// Macro-benchmark and determinism fuzz of the platform simulator: sweep
// every builtin scenario across seeds and worker-pool sizes, replay each
// cell's recorded journal at that cell's pool size, and hold the simulator
// to its contract —
//
//   * the schedule digest of one (scenario, seed) is identical at every
//     pool size (the event loop never leaks pool scheduling into its
//     decisions),
//   * the journal fingerprint (records minus the config/stats lines) of a
//     deterministic_journal scenario is identical at every pool size, and
//   * every recorded journal replays with byte-identical reports
//     (wire::ReplayTrace), whatever pool recorded it.
//
// Any violation exits non-zero — this is the schedule-space analogue of the
// replay smoke, run as a matrix instead of a point check. Results land in
// platform_sim.json (the checked-in copy is the dev-box scoreboard).
//
// Usage: bench_platform_sim [ticks] [strategies] [seeds] [pools] [out.json]
//   ticks       virtual horizon per run          (default 120)
//   strategies  catalog size per tenant          (default 1500)
//   seeds       comma-separated root seeds       (default 101,202,303)
//   pools       comma-separated worker pools     (default 1,2,4,8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/codec.h"
#include "src/api/replay.h"
#include "src/core/kernels/kernels.h"
#include "src/sim/engine.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"

namespace sim = stratrec::sim;
namespace wire = stratrec::wire;
namespace kernels = stratrec::core::kernels;

namespace {

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> values;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) values.push_back(std::stoul(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return values;
}

struct Cell {
  size_t seed = 0;
  size_t pool = 0;
  sim::SimReport report;
  uint64_t fingerprint = 0;  ///< tenant-0 journal
  wire::ReplayResult replay;  ///< folded across tenant journals
};

struct ScenarioRow {
  sim::ScenarioConfig scenario;
  std::vector<Cell> cells;
};

/// Replays every tenant journal of `report` at `pool` threads; returns
/// false (after printing why) on any byte mismatch.
bool ReplayCell(const sim::SimReport& report, size_t pool,
                wire::ReplayResult* folded) {
  for (const std::string& path : report.journals) {
    auto trace = wire::ReadTraceFile(path);
    if (!trace.ok()) {
      std::fprintf(stderr, "  trace read failed (%s): %s\n", path.c_str(),
                   trace.status().ToString().c_str());
      return false;
    }
    wire::ReplayOptions options;
    options.worker_threads = pool;
    auto result = wire::ReplayTrace(*trace, options);
    if (!result.ok()) {
      std::fprintf(stderr, "  replay failed (%s): %s\n", path.c_str(),
                   result.status().ToString().c_str());
      return false;
    }
    if (!result->ok()) {
      std::fprintf(stderr, "  REPLAY MISMATCH (%s): %zu of %zu pairs\n",
                   path.c_str(), result->replayed - result->matched,
                   result->replayed);
      return false;
    }
    folded->replayed += result->replayed;
    folded->matched += result->matched;
    folded->skipped += result->skipped;
    folded->stream_sessions += result->stream_sessions;
    folded->stream_events_replayed += result->stream_events_replayed;
    folded->stream_matched += result->stream_matched;
  }
  return true;
}

std::string Json(const std::vector<ScenarioRow>& rows, double ticks,
                 size_t strategies, const std::vector<size_t>& seeds,
                 const std::vector<size_t>& pools) {
  const auto list = [](const std::vector<size_t>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      out += (i == 0 ? "" : ", ") + std::to_string(values[i]);
    }
    return out + "]";
  };
  std::string json = "{\n  \"benchmark\": \"platform_sim\",\n";
  json += "  \"workload\": {\"ticks\": " + std::to_string(ticks) +
          ", \"strategies\": " + std::to_string(strategies) +
          ", \"seeds\": " + list(seeds) + ", \"pools\": " + list(pools) +
          ",\n    \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) +
          ", \"kernel_dispatch\": \"" +
          kernels::DispatchLevelName(kernels::ActiveDispatchLevel()) +
          "\", \"compiler_flags\": \"" + kernels::CompileFlags() + "\"},\n";
  json += "  \"scenarios\": [";
  for (size_t s = 0; s < rows.size(); ++s) {
    const ScenarioRow& row = rows[s];
    json += (s == 0 ? "\n" : ",\n");
    json += "    {\"name\": \"" + row.scenario.name + "\", \"stream_mode\": " +
            (row.scenario.stream_mode ? "true" : "false") +
            ", \"tenants\": " + std::to_string(row.scenario.tenants) +
            ", \"deterministic_journal\": " +
            (row.scenario.deterministic_journal ? "true" : "false") +
            ",\n     \"cells\": [";
    for (size_t c = 0; c < row.cells.size(); ++c) {
      const Cell& cell = row.cells[c];
      const sim::SimReport& r = cell.report;
      json += (c == 0 ? "\n" : ",\n");
      json += "      {\"seed\": " + std::to_string(cell.seed) +
              ", \"pool\": " + std::to_string(cell.pool) + ", \"digest\": \"" +
              sim::ScheduleDigest::Hex(r.schedule_digest) +
              "\", \"fingerprint\": \"" +
              sim::ScheduleDigest::Hex(cell.fingerprint) +
              "\",\n       \"batches\": " + std::to_string(r.batches_submitted) +
              ", \"requests\": " + std::to_string(r.requests_submitted) +
              ", \"satisfied\": " + std::to_string(r.requests_satisfied) +
              ", \"alternatives\": " + std::to_string(r.alternatives_served) +
              ", \"dropped\": " + std::to_string(r.dropped_batches) +
              ", \"cancel_attempts\": " + std::to_string(r.cancel_attempts) +
              ", \"cancelled\": " + std::to_string(r.cancelled_batches) +
              ",\n       \"stream_arrivals\": " +
              std::to_string(r.stream.arrivals) + ", \"stream_admitted\": " +
              std::to_string(r.stream.admitted) + ", \"stream_revoked\": " +
              std::to_string(r.stream.revoked) +
              ", \"availability_changes\": " +
              std::to_string(r.availability_changes) +
              ",\n       \"latency_p50\": " + std::to_string(r.latency.p50) +
              ", \"latency_p95\": " + std::to_string(r.latency.p95) +
              ", \"latency_p99\": " + std::to_string(r.latency.p99) +
              ", \"events\": " + std::to_string(r.events_fired) +
              ",\n       \"replayed_pairs\": " +
              std::to_string(cell.replay.replayed) +
              ", \"replayed_stream_events\": " +
              std::to_string(cell.replay.stream_events_replayed) +
              ", \"wall_seconds\": " + std::to_string(r.wall_seconds) + "}";
    }
    json += "\n     ]}";
  }
  json += "\n  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const double ticks = argc > 1 ? std::atof(argv[1]) : 120.0;
  const size_t strategies =
      argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 1500;
  const std::vector<size_t> seeds = ParseList(argc > 3 ? argv[3] : "101,202,303");
  const std::vector<size_t> pools = ParseList(argc > 4 ? argv[4] : "1,2,4,8");
  const char* out_path = argc > 5 ? argv[5] : "platform_sim.json";
  if (ticks <= 0.0 || strategies == 0 || seeds.empty() || pools.empty()) {
    std::fprintf(stderr,
                 "usage: %s [ticks] [strategies] [seeds] [pools] [out.json]\n",
                 argv[0]);
    return 2;
  }

  std::printf(
      "platform sim sweep: %zu scenarios x %zu seeds x %zu pools, %g ticks, "
      "%zu strategies\n",
      sim::BuiltinScenarios().size(), seeds.size(), pools.size(), ticks,
      strategies);

  std::vector<ScenarioRow> rows;
  bool failed = false;
  for (sim::ScenarioConfig& scenario : sim::BuiltinScenarios()) {
    sim::ScaleScenario(&scenario, ticks, strategies);
    ScenarioRow row;
    row.scenario = scenario;
    for (size_t seed : seeds) {
      // Per-(scenario, seed) invariants, collected across the pool axis.
      uint64_t digest = 0;
      uint64_t fingerprint = 0;
      bool first_pool = true;
      for (size_t pool : pools) {
        Cell cell;
        cell.seed = seed;
        cell.pool = pool;
        sim::RunOptions options;
        options.seed = seed;
        options.worker_threads = pool;
        options.journal_path = "platform_sim_" + scenario.name + "_" +
                               std::to_string(seed) + "_p" +
                               std::to_string(pool) + ".journal";
        auto report = sim::RunScenario(scenario, options);
        if (!report.ok()) {
          std::fprintf(stderr, "%s seed %zu pool %zu failed: %s\n",
                       scenario.name.c_str(), seed, pool,
                       report.status().ToString().c_str());
          return 1;
        }
        cell.report = std::move(*report);
        if (!ReplayCell(cell.report, pool, &cell.replay)) failed = true;
        auto print = sim::JournalFingerprint(cell.report.journals.front());
        if (!print.ok()) {
          std::fprintf(stderr, "  fingerprint failed: %s\n",
                       print.status().ToString().c_str());
          return 1;
        }
        cell.fingerprint = *print;

        if (first_pool) {
          digest = cell.report.schedule_digest;
          fingerprint = cell.fingerprint;
          first_pool = false;
        } else {
          if (cell.report.schedule_digest != digest) {
            std::fprintf(stderr,
                         "  DIGEST MISMATCH: %s seed %zu pool %zu: %s != %s\n",
                         scenario.name.c_str(), seed, pool,
                         sim::ScheduleDigest::Hex(cell.report.schedule_digest)
                             .c_str(),
                         sim::ScheduleDigest::Hex(digest).c_str());
            failed = true;
          }
          if (scenario.deterministic_journal &&
              cell.fingerprint != fingerprint) {
            std::fprintf(
                stderr,
                "  JOURNAL FINGERPRINT MISMATCH: %s seed %zu pool %zu\n",
                scenario.name.c_str(), seed, pool);
            failed = true;
          }
        }
        for (const std::string& path : cell.report.journals) {
          std::remove(path.c_str());
        }
        std::printf(
            "  %-16s seed %-4zu pool %zu: %5zu batches, %6zu requests, "
            "digest %s, replay %zu/%zu ok (%.2fs)\n",
            scenario.name.c_str(), seed, pool,
            cell.report.batches_submitted + cell.report.stream.arrivals,
            cell.report.requests_submitted + cell.report.stream.arrivals,
            sim::ScheduleDigest::Hex(cell.report.schedule_digest).c_str(),
            cell.replay.matched + cell.replay.stream_matched,
            cell.replay.replayed + cell.replay.stream_events_replayed,
            cell.report.wall_seconds);
        row.cells.push_back(std::move(cell));
      }
    }
    rows.push_back(std::move(row));
  }

  if (failed) {
    std::fprintf(stderr, "platform sim sweep FAILED\n");
    return 1;
  }

  const std::string json = Json(rows, ticks, strategies, seeds, pools);
  if (FILE* out = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("sweep ok (written to %s)\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
