// Figure 11: worker availability estimation across the three deployment
// windows for SEQ-IND-CRO and SIM-COL-CRO (simulated AMT study; the paper
// ran 8 HITs per window with 10 workers each and computed x'/x). Expected
// shape: early week (Mon-Thu) > mid week (Thu-Sun) > weekend (Fri-Mon), for
// both task types, with standard-error bars.
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/platform/amt.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace platform = stratrec::platform;

void RunStudy(platform::TaskType type) {
  platform::AmtStudyOptions options;
  options.availability_repetitions = 8;  // 8 HITs per window
  platform::AmtSimulator amt(options, /*seed=*/0xF16'11ull);
  const auto cells = amt.RunAvailabilityStudy(type);

  std::printf("\nTask type: %s (suitable workers: %zu of %zu)\n",
              platform::TaskTypeName(type),
              amt.pool().SuitableWorkerCount(type), amt.pool().workers().size());
  AsciiTable table(
      {"strategy", "window", "availability", "std-error", "ground truth"});
  for (const auto& cell : cells) {
    table.AddRow({stratrec::core::StageName(cell.stage),
                  platform::WindowName(cell.window),
                  FormatDouble(cell.mean, 4), FormatDouble(cell.std_error, 4),
                  FormatDouble(amt.pool().TrueIntensity(cell.window), 4)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: worker availability estimation per deployment window\n"
      "(paper windows: weekend = Fri-Mon, early-week = Mon-Thu, mid-week = "
      "Thu-Sun)\n");
  RunStudy(platform::TaskType::kSentenceTranslation);
  RunStudy(platform::TaskType::kTextCreation);
  std::printf(
      "\nExpected shape (paper): availability varies over time; workers are "
      "most\navailable in the early-week window for both strategies.\n");
  return 0;
}
