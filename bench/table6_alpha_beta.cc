// Table 6: (alpha, beta) estimation — fit the linear availability models
// from simulated deployments and compare against the paper's published
// coefficients (which are this simulator's ground truth), checking that the
// truth lies within the fitted 90% confidence intervals as the paper claims.
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/platform/amt.h"
#include "src/platform/ground_truth.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace platform = stratrec::platform;

struct RowSpec {
  platform::TaskType type;
  const char* stage;
  const char* label;
};

void AddRows(AsciiTable* table, platform::AmtSimulator* amt,
             const RowSpec& spec, int* within_ci, int* total) {
  const core::StageSpec stage = core::ParseStageName(spec.stage).value();
  const auto observations = amt->CollectModelObservations(spec.type, stage);
  auto fitted = core::FitProfile(observations);
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 fitted.status().ToString().c_str());
    return;
  }
  const core::StrategyProfile truth = platform::TrueProfile(spec.type, stage);

  struct ParamRow {
    const char* name;
    core::LinearModel true_model;
    core::LinearModel fitted_model;
    const stratrec::stats::RegressionFit* fit;
  };
  const ParamRow rows[3] = {
      {"Quality", truth.quality, fitted->profile.quality,
       &fitted->quality_fit},
      {"Cost", truth.cost, fitted->profile.cost, &fitted->cost_fit},
      {"Latency", truth.latency, fitted->profile.latency,
       &fitted->latency_fit},
  };
  for (const ParamRow& row : rows) {
    const bool alpha_in =
        row.fit->AlphaCiContains(row.true_model.alpha, 0.90);
    const bool beta_in = row.fit->BetaCiContains(row.true_model.beta, 0.90);
    *within_ci += (alpha_in ? 1 : 0) + (beta_in ? 1 : 0);
    *total += 2;
    table->AddRow({spec.label, row.name,
                   FormatDouble(row.true_model.alpha, 2) + ", " +
                       FormatDouble(row.true_model.beta, 2),
                   FormatDouble(row.fitted_model.alpha, 2) + ", " +
                       FormatDouble(row.fitted_model.beta, 2),
                   alpha_in && beta_in ? "yes" : "partial"});
  }
}

}  // namespace

int main() {
  std::printf(
      "Table 6: alpha, beta estimation (paper coefficients vs fitted from "
      "simulated deployments)\n\n");
  platform::AmtStudyOptions options;
  options.observation_repetitions = 12;
  platform::AmtSimulator amt(options, /*seed=*/0x7AB'6ull);

  AsciiTable table({"task-strategy", "parameter", "paper alpha,beta",
                    "fitted alpha,beta", "truth in 90% CI"});
  int within_ci = 0, total = 0;
  const RowSpec specs[4] = {
      {platform::TaskType::kSentenceTranslation, "SEQ-IND-CRO",
       "Translation SEQ-IND-CRO"},
      {platform::TaskType::kSentenceTranslation, "SIM-COL-CRO",
       "Translation SIM-COL-CRO"},
      {platform::TaskType::kTextCreation, "SEQ-IND-CRO",
       "Creation SEQ-IND-CRO"},
      {platform::TaskType::kTextCreation, "SIM-COL-CRO",
       "Creation SIM-COL-CRO"},
  };
  for (const RowSpec& spec : specs) {
    AddRows(&table, &amt, spec, &within_ci, &total);
  }
  table.Print();
  std::printf(
      "\n%d of %d coefficients within their 90%% confidence interval "
      "(paper: all within 90%% CI).\n",
      within_ci, total);
  return 0;
}
