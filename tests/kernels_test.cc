// Property tests for the SoA SIMD kernels: the AVX2 level must be
// *byte-identical* to the scalar reference on adversarial inputs —
// unaligned lengths (not a multiple of the 4-double lane width, shorter
// than one lane, empty), denormal/±0.0/±inf coefficients, and thresholds
// that drive the constraint analysis through every branch. Identity is
// asserted on the bit patterns (memcmp of the doubles), not on ==, so a
// -0.0 vs +0.0 or differing-NaN divergence fails the test.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernels/kernels_internal.h"

namespace stratrec::core {
namespace {

using kernels::CoeffSoA;
using kernels::DispatchLevel;
using kernels::KernelConfig;
using kernels::PointSoA;
namespace ki = kernels::internal;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenormal = std::numeric_limits<double>::denorm_min();

/// Coefficient soup biased toward the hard cases: exact zeros (constant
/// parameters), signed zeros, denormals, infinities, and ordinary values
/// spilling outside [0, 1] so ClampUnit has work to do.
double AdversarialValue(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uniform(-1.5, 1.5);
  switch (rng() % 10) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return kDenormal;
    case 3:
      return -kDenormal;
    case 4:
      return kInf;
    case 5:
      return -kInf;
    default:
      return uniform(rng);
  }
}

struct Arrays {
  std::vector<double> qa, qb, ca, cb, la, lb;
  CoeffSoA soa() const {
    return CoeffSoA{qa.data(), qb.data(), ca.data(),
                    cb.data(), la.data(), lb.data()};
  }
};

Arrays RandomArrays(std::mt19937_64& rng, size_t n) {
  Arrays a;
  for (std::vector<double>* v : {&a.qa, &a.qb, &a.ca, &a.cb, &a.la, &a.lb}) {
    v->resize(n);
    for (double& x : *v) x = AdversarialValue(rng);
  }
  return a;
}

ParamVector RandomThresholds(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return ParamVector{unit(rng), unit(rng), unit(rng)};
}

/// Bitwise comparison: trips on -0.0 vs +0.0 and on NaN payload drift.
void ExpectSameBits(const double* a, const double* b, size_t n,
                    const char* what) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << what << " diverges at element " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

// Lengths around the 4-lane width: empty, sub-lane, exact lanes, ragged
// tails, and a larger block exercising many full vector steps.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 64, 257, 1000};

TEST(Kernels, EstimateParamsBitIdenticalScalarVsAvx2) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(0xE5717A7E);
  for (size_t n : kLengths) {
    const Arrays a = RandomArrays(rng, n);
    for (double w : {0.0, 0.25, 1.0, 0.7071067811865476}) {
      std::vector<ParamVector> scalar(n), avx2(n);
      ki::ScalarEstimateParams(a.soa(), w, 0, n, scalar.data());
      ki::Avx2EstimateParams(a.soa(), w, 0, n, avx2.data());
      ExpectSameBits(reinterpret_cast<const double*>(scalar.data()),
                     reinterpret_cast<const double*>(avx2.data()), n * 3,
                     "EstimateParams");
    }
  }
}

TEST(Kernels, FillWorkforceCellsBitIdenticalScalarVsAvx2) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(0xF111CE11);
  for (size_t n : kLengths) {
    const Arrays a = RandomArrays(rng, n);
    const ParamVector thresholds = RandomThresholds(rng);
    for (WorkforcePolicy policy : {WorkforcePolicy::kMinimalWorkforce,
                                   WorkforcePolicy::kPaperMaxOfThree}) {
      std::vector<WorkforceCell> scalar(n), avx2(n);
      ki::ScalarFillWorkforceCells(a.soa(), 0, n, thresholds, policy,
                                   scalar.data());
      ki::Avx2FillWorkforceCells(a.soa(), 0, n, thresholds, policy,
                                 avx2.data());
      for (size_t j = 0; j < n; ++j) {
        ExpectSameBits(&scalar[j].requirement, &avx2[j].requirement, 1,
                       "FillWorkforceCells requirement");
        EXPECT_EQ(scalar[j].feasible, avx2[j].feasible)
            << "feasible diverges at " << j;
      }
    }
  }
}

TEST(Kernels, FillWorkforceCellsSubrangeMatchesFullRange) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  // Partitioned calls (what ParallelFor does to a matrix row) must compose
  // to the same bytes as one whole-range call.
  std::mt19937_64 rng(0x5EB12A46);
  const size_t n = 103;
  const Arrays a = RandomArrays(rng, n);
  const ParamVector thresholds = RandomThresholds(rng);
  std::vector<WorkforceCell> whole(n), pieces(n);
  ki::Avx2FillWorkforceCells(a.soa(), 0, n, thresholds,
                             WorkforcePolicy::kPaperMaxOfThree, whole.data());
  for (size_t begin = 0; begin < n;) {
    const size_t end = std::min(n, begin + 1 + rng() % 9);
    ki::Avx2FillWorkforceCells(a.soa(), begin, end, thresholds,
                               WorkforcePolicy::kPaperMaxOfThree,
                               pieces.data());
    begin = end;
  }
  for (size_t j = 0; j < n; ++j) {
    ExpectSameBits(&whole[j].requirement, &pieces[j].requirement, 1,
                   "subrange requirement");
    EXPECT_EQ(whole[j].feasible, pieces[j].feasible);
  }
}

TEST(Kernels, DominanceBitIdenticalScalarVsAvx2) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(0xD0317A7E);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t n : kLengths) {
    std::vector<double> q(n), c(n), l(n);
    // Cluster coordinates on a coarse grid so exact ties (the boundary
    // between "no worse" and "strictly better") actually occur.
    auto coarse = [&] { return std::round(unit(rng) * 4.0) / 4.0; };
    for (size_t i = 0; i < n; ++i) {
      q[i] = coarse();
      c[i] = coarse();
      l[i] = coarse();
    }
    const PointSoA pts{q.data(), c.data(), l.data()};
    for (int probe = 0; probe < 32; ++probe) {
      const ParamVector query{coarse(), coarse(), coarse()};
      EXPECT_EQ(ki::ScalarAnyDominates(pts, n, query),
                ki::Avx2AnyDominates(pts, n, query));
      EXPECT_EQ(ki::ScalarCountDominators(pts, n, query),
                ki::Avx2CountDominators(pts, n, query));
    }
  }
}

TEST(Kernels, CountDominatorsBoundedMatchesScalarScan) {
  if (!kernels::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(0xB0D4DED5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t n : kLengths) {
    std::vector<double> q(n), c(n), l(n), sums(n);
    for (size_t i = 0; i < n; ++i) {
      q[i] = unit(rng);
      c[i] = unit(rng);
      l[i] = unit(rng);
      sums[i] = (1.0 - q[i]) + c[i] + l[i];
    }
    std::sort(sums.begin(), sums.end());  // kernel precondition: ascending
    const PointSoA pts{q.data(), c.data(), l.data()};
    for (int probe = 0; probe < 32; ++probe) {
      const ParamVector query{unit(rng), unit(rng), unit(rng)};
      const double limit = unit(rng) * 3.0;
      for (uint32_t cap : {1u, 2u, 64u}) {
        EXPECT_EQ(
            ki::ScalarCountDominatorsBounded(pts, sums.data(), n, limit, cap,
                                             query),
            ki::Avx2CountDominatorsBounded(pts, sums.data(), n, limit, cap,
                                           query));
      }
    }
  }
}

TEST(Kernels, ConfigureForcesAndRestoresDispatch) {
  const DispatchLevel startup = kernels::ActiveDispatchLevel();
  kernels::Configure(KernelConfig{DispatchLevel::kScalar});
  EXPECT_EQ(kernels::ActiveDispatchLevel(), DispatchLevel::kScalar);
  if (kernels::Avx2Available()) {
    kernels::Configure(KernelConfig{DispatchLevel::kAvx2});
    EXPECT_EQ(kernels::ActiveDispatchLevel(), DispatchLevel::kAvx2);
  }
  kernels::Configure(KernelConfig{});  // restore the startup resolution
  EXPECT_EQ(kernels::ActiveDispatchLevel(), startup);
}

TEST(Kernels, ForcingUnavailableLevelFallsBackToScalar) {
  if (kernels::Avx2Available()) {
    GTEST_SKIP() << "AVX2 available; the fallback branch is unreachable";
  }
  kernels::Configure(KernelConfig{DispatchLevel::kAvx2});
  EXPECT_EQ(kernels::ActiveDispatchLevel(), DispatchLevel::kScalar);
  kernels::Configure(KernelConfig{});
}

TEST(Kernels, EnvForceScalarPinsDispatch) {
  // The env var is read at (re-)resolution time; Configure({}) re-resolves.
  ASSERT_EQ(setenv("STRATREC_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  kernels::Configure(KernelConfig{});
  EXPECT_EQ(kernels::ActiveDispatchLevel(), DispatchLevel::kScalar);
  // "0" and empty mean unset.
  ASSERT_EQ(setenv("STRATREC_FORCE_SCALAR", "0", 1), 0);
  kernels::Configure(KernelConfig{});
  EXPECT_EQ(kernels::ActiveDispatchLevel() == DispatchLevel::kAvx2,
            kernels::Avx2Available());
  ASSERT_EQ(unsetenv("STRATREC_FORCE_SCALAR"), 0);
  kernels::Configure(KernelConfig{});
}

TEST(Kernels, DispatchNamesAndCompileFlags) {
  EXPECT_STREQ(kernels::DispatchLevelName(DispatchLevel::kScalar), "scalar");
  EXPECT_STREQ(kernels::DispatchLevelName(DispatchLevel::kAvx2), "avx2");
  EXPECT_NE(kernels::CompileFlags().find("cxx="), std::string::npos);
  EXPECT_NE(kernels::CompileFlags().find("avx2-tu="), std::string::npos);
}

}  // namespace
}  // namespace stratrec::core
