// Unit tests for the workforce-requirement computation (Section 3.2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/workforce.h"

namespace stratrec::core {
namespace {

StrategyProfile TypicalProfile() {
  StrategyProfile profile;
  profile.quality = {0.25, 0.55};   // rises with availability
  profile.cost = {0.4125, 0.0};     // rises with availability
  profile.latency = {-0.15, 0.40};  // falls with availability
  return profile;
}

TEST(WorkforceCellTest, MinimalPolicyTakesBindingLowerBound) {
  // d3 of Example 1 against the quickstart's s2 profile: quality needs
  // w >= 0.6, latency needs w >= 0.8, cost allows any w <= 1 -> 0.8.
  const ParamVector d3{0.7, 0.83, 0.28};
  const WorkforceCell cell = ComputeWorkforceCell(
      TypicalProfile(), d3, WorkforcePolicy::kMinimalWorkforce);
  ASSERT_TRUE(cell.feasible);
  EXPECT_NEAR(cell.requirement, 0.8, 1e-12);
}

TEST(WorkforceCellTest, PaperPolicySpendsFullBudget) {
  // Under the literal max-of-three, the cost equality (w = 0.83/0.4125 ≈
  // 2.01) dominates and is clamped into the feasible interval [0.8, 1].
  const ParamVector d3{0.7, 0.83, 0.28};
  const WorkforceCell cell = ComputeWorkforceCell(
      TypicalProfile(), d3, WorkforcePolicy::kPaperMaxOfThree);
  ASSERT_TRUE(cell.feasible);
  EXPECT_NEAR(cell.requirement, 1.0, 1e-12);
}

TEST(WorkforceCellTest, InfeasibleWhenQualityUnreachable) {
  // Quality tops out at 0.8 (w = 1) but the request wants 0.9.
  const ParamVector demanding{0.9, 1.0, 1.0};
  const WorkforceCell cell = ComputeWorkforceCell(
      TypicalProfile(), demanding, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_FALSE(cell.feasible);
  EXPECT_TRUE(std::isinf(cell.requirement));
}

TEST(WorkforceCellTest, InfeasibleWhenBudgetTooTight) {
  // Latency needs w >= 0.8 but cost cap allows only w <= 0.2/0.4125 ≈ 0.48.
  const ParamVector cheap{0.0, 0.2, 0.28};
  const WorkforceCell cell = ComputeWorkforceCell(
      TypicalProfile(), cheap, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_FALSE(cell.feasible);
}

TEST(WorkforceCellTest, ConstantModelsActAsGates) {
  StrategyProfile constant;
  constant.quality = {0.0, 0.75};
  constant.cost = {0.0, 0.3};
  constant.latency = {0.0, 0.2};
  // Thresholds met by the constants: zero workforce required.
  WorkforceCell cell = ComputeWorkforceCell(
      constant, {0.7, 0.4, 0.3}, WorkforcePolicy::kMinimalWorkforce);
  ASSERT_TRUE(cell.feasible);
  EXPECT_DOUBLE_EQ(cell.requirement, 0.0);
  // Quality constant below the bound: infeasible at any workforce.
  cell = ComputeWorkforceCell(constant, {0.8, 0.4, 0.3},
                              WorkforcePolicy::kMinimalWorkforce);
  EXPECT_FALSE(cell.feasible);
}

TEST(WorkforceCellTest, RequirementAboveOneIsInfeasible) {
  StrategyProfile slow;
  slow.quality = {0.2, 0.0};  // quality 0.2 even with every worker
  slow.cost = {0.1, 0.0};
  slow.latency = {-0.1, 0.5};
  const WorkforceCell cell = ComputeWorkforceCell(
      slow, {0.5, 1.0, 1.0}, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_FALSE(cell.feasible);  // needs w = 2.5
}

TEST(WorkforceCellTest, AtypicalSlopeSigns) {
  // A strategy whose quality *decreases* with availability (e.g. congestion)
  // turns the quality bound into an upper bound on w.
  StrategyProfile odd;
  odd.quality = {-0.5, 0.9};   // q(0)=0.9, q(1)=0.4
  odd.cost = {0.5, 0.0};
  odd.latency = {-0.2, 0.4};
  // quality >= 0.7 -> w <= 0.4 ; latency <= 0.4 -> w >= 0; feasible.
  const WorkforceCell cell = ComputeWorkforceCell(
      odd, {0.7, 1.0, 0.4}, WorkforcePolicy::kMinimalWorkforce);
  ASSERT_TRUE(cell.feasible);
  EXPECT_NEAR(cell.requirement, 0.0, 1e-12);
  // But demanding latency <= 0.3 needs w >= 0.5 > 0.4: infeasible.
  EXPECT_FALSE(ComputeWorkforceCell(odd, {0.7, 1.0, 0.3},
                                    WorkforcePolicy::kMinimalWorkforce)
                   .feasible);
}

class WorkforceMatrixTest : public testing::Test {
 protected:
  WorkforceMatrixTest() {
    // Three strategies with staggered quality requirements.
    for (double beta : {0.55, 0.60, 0.68}) {
      StrategyProfile profile;
      profile.quality = {0.25, beta};
      profile.cost = {0.5, 0.0};
      profile.latency = {-0.2, 0.3};
      profiles_.push_back(profile);
    }
    requests_.push_back({"d1", {0.7, 1.0, 0.3}, 2});
  }
  std::vector<StrategyProfile> profiles_;
  std::vector<DeploymentRequest> requests_;
};

TEST_F(WorkforceMatrixTest, CellsMatchDirectComputation) {
  const auto matrix = WorkforceMatrix::Compute(
      requests_, profiles_, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_EQ(matrix.num_requests(), 1u);
  EXPECT_EQ(matrix.num_strategies(), 3u);
  // quality lower bounds: (0.7-0.55)/0.25=0.6, 0.4, 0.08.
  EXPECT_NEAR(matrix.At(0, 0).requirement, 0.6, 1e-12);
  EXPECT_NEAR(matrix.At(0, 1).requirement, 0.4, 1e-12);
  EXPECT_NEAR(matrix.At(0, 2).requirement, 0.08, 1e-12);
}

TEST_F(WorkforceMatrixTest, KBestAscendingByRequirement) {
  const auto matrix = WorkforceMatrix::Compute(
      requests_, profiles_, WorkforcePolicy::kMinimalWorkforce);
  auto best = matrix.KBestStrategies(0, 2);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, (std::vector<size_t>{2, 1}));
  auto all = matrix.KBestStrategies(0, 3);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<size_t>{2, 1, 0}));
}

TEST_F(WorkforceMatrixTest, SumAndMaxAggregation) {
  const auto matrix = WorkforceMatrix::Compute(
      requests_, profiles_, WorkforcePolicy::kMinimalWorkforce);
  // Sum-case (Figure 3b): deploy with all k -> sum of k smallest.
  auto sum = matrix.AggregateRequirement(0, 2, AggregationMode::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 0.08 + 0.4, 1e-12);
  // Max-case (Figure 3c): deploy one of the k -> k-th smallest.
  auto max = matrix.AggregateRequirement(0, 2, AggregationMode::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_NEAR(*max, 0.4, 1e-12);
}

TEST_F(WorkforceMatrixTest, InfeasibleWhenFewerThanK) {
  const auto matrix = WorkforceMatrix::Compute(
      requests_, profiles_, WorkforcePolicy::kMinimalWorkforce);
  auto too_many = matrix.KBestStrategies(0, 4);
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInfeasible);
}

TEST_F(WorkforceMatrixTest, BoundsChecking) {
  const auto matrix = WorkforceMatrix::Compute(
      requests_, profiles_, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_FALSE(matrix.KBestStrategies(5, 1).ok());
  EXPECT_FALSE(matrix.KBestStrategies(0, 0).ok());
}

TEST(WorkforceMatrixEdge, EmptyInputs) {
  const auto matrix = WorkforceMatrix::Compute(
      {}, std::vector<StrategyProfile>{}, WorkforcePolicy::kMinimalWorkforce);
  EXPECT_EQ(matrix.num_requests(), 0u);
  EXPECT_EQ(matrix.num_strategies(), 0u);
}

TEST(WorkforceMatrixEdge, TiesBrokenByIndex) {
  StrategyProfile profile;
  profile.quality = {0.5, 0.2};
  profile.cost = {0.5, 0.0};
  profile.latency = {-0.2, 0.3};
  const std::vector<StrategyProfile> profiles = {profile, profile, profile};
  const std::vector<DeploymentRequest> requests = {
      {"d", {0.45, 1.0, 0.3}, 2}};
  const auto matrix = WorkforceMatrix::Compute(
      requests, profiles, WorkforcePolicy::kMinimalWorkforce);
  auto best = matrix.KBestStrategies(0, 2);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace stratrec::core
