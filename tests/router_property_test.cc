// The shard router's correctness anchor: a ShardRouter over {1, 2, 4}
// shards returns *byte-identical* reports to a single unsharded Service for
// the same request trace, at pool sizes {1, 4} — asserted on the wire-codec
// encoding (json::Dump(wire::Encode(report))), so every field, every
// double bit, and every ordering is covered. The trace exercises all three
// built-in batch algorithms, both aggregation modes, the custom-solver
// fallback ("weighted"), alternatives on and off, multiple ADPaR backends,
// in-band infeasibility (k > |S|), and whole-batch validation failures
// (k < 1), plus sweeps over the solver family. A second leg re-runs the
// trace with replicas {1, 2, 3} per shard under injected replica failures:
// failover must preserve byte identity too.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/api/codec.h"
#include "src/api/service.h"
#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/router/shard_router.h"

namespace stratrec {
namespace {

core::Catalog WideCatalog() {
  // Ten strategies so the four-shard split is 3/3/2/2; coefficients from a
  // fixed seed, clamped into the normalized space by EstimateParams.
  static const char* kStages[] = {
      "SIM-COL-CRO", "SIM-COL-HYB", "SIM-IND-CRO", "SIM-IND-HYB",
      "SEQ-COL-CRO", "SEQ-COL-HYB", "SEQ-IND-CRO", "SEQ-IND-HYB",
  };
  std::mt19937 rng(20200614);  // SIGMOD'20
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  core::Catalog catalog;
  for (int i = 0; i < 10; ++i) {
    catalog.strategies.push_back(
        {"s" + std::to_string(i),
         core::ParseStageName(kStages[i % 8]).value()});
    core::StrategyProfile profile;
    profile.quality = {0.8 * unit(rng), 0.2 * unit(rng)};
    profile.cost = {0.9 * unit(rng), 0.1 * unit(rng)};
    profile.latency = {-0.6 * unit(rng), 0.3 + 0.5 * unit(rng)};
    catalog.profiles.push_back(profile);
  }
  return catalog;
}

std::vector<core::DeploymentRequest> MixedRequests() {
  // Thresholds straddle satisfiable and unsatisfiable so the alternatives
  // (ADPaR) leg runs; ks cover the skyband spread.
  return {
      {"d1", {0.40, 0.50, 0.60}, 1},
      {"d2", {0.90, 0.05, 0.10}, 2},  // near-impossible: drives alternatives
      {"d3", {0.30, 0.70, 0.80}, 3},
      {"d4", {0.85, 0.15, 0.20}, 4},
      {"d5", {0.10, 0.95, 0.99}, 2},
  };
}

/// One mixed trace; every request pins its id so reports are comparable
/// byte for byte.
std::vector<api::BatchRequest> BatchTrace() {
  std::vector<api::BatchRequest> trace;

  api::BatchRequest defaults;  // batchstrat, kSum, alternatives on
  defaults.requests = MixedRequests();
  defaults.availability = api::AvailabilitySpec::Fixed(0.8);
  defaults.request_id = "b-defaults";
  trace.push_back(defaults);

  api::BatchRequest baseline = defaults;
  baseline.algorithm = "baseline-g";
  baseline.aggregation = core::AggregationMode::kMax;
  baseline.availability = api::AvailabilitySpec::Fixed(0.55);
  baseline.request_id = "b-baseline-g";
  trace.push_back(baseline);

  api::BatchRequest brute = defaults;
  brute.algorithm = "brute-force";
  brute.availability = api::AvailabilitySpec::Fixed(0.37);
  brute.request_id = "b-brute";
  trace.push_back(brute);

  api::BatchRequest weighted = defaults;  // custom-solver fallback path
  weighted.algorithm = "weighted";
  weighted.request_id = "b-weighted";
  trace.push_back(weighted);

  api::BatchRequest no_alternatives = defaults;
  no_alternatives.recommend_alternatives = false;
  no_alternatives.aggregation = core::AggregationMode::kMax;
  no_alternatives.request_id = "b-no-alt";
  trace.push_back(no_alternatives);

  api::BatchRequest oversized = defaults;  // k > |S|: in-band infeasibility
  oversized.requests.push_back({"d-wide", {0.5, 0.5, 0.5}, 15});
  oversized.request_id = "b-oversized-k";
  trace.push_back(oversized);

  api::BatchRequest invalid = defaults;  // k < 1 fails the whole batch
  invalid.requests.push_back({"d-bad", {0.5, 0.5, 0.5}, 0});
  invalid.request_id = "b-invalid-k";
  trace.push_back(invalid);

  return trace;
}

std::vector<api::SweepRequest> SweepTrace() {
  std::vector<api::SweepRequest> trace;

  api::SweepRequest exact;  // default solver = "exact"
  exact.targets = {{"t1", {0.9, 0.1, 0.1}, 1},
                   {"t2", {0.5, 0.9, 0.9}, 2},
                   {"t3", {0.7, 0.3, 0.4}, 4},
                   {"t-zero", {0.5, 0.5, 0.5}, 0},    // per-cell invalid
                   {"t-wide", {0.5, 0.5, 0.5}, 20}};  // per-cell infeasible
  exact.availability = api::AvailabilitySpec::Fixed(0.66);
  exact.request_id = "s-exact";
  trace.push_back(exact);

  api::SweepRequest family = exact;
  family.solvers = {"exact", "paper-sweep", "baseline2", "baseline3"};
  family.availability = api::AvailabilitySpec::Fixed(0.41);
  family.request_id = "s-family";
  trace.push_back(family);

  return trace;
}

/// Runs the whole trace and flattens every outcome to comparable text:
/// the encoded report for OK, the status string otherwise.
template <typename Tier>
std::vector<std::string> RunTrace(const Tier& tier) {
  std::vector<std::string> out;
  for (const api::BatchRequest& request : BatchTrace()) {
    auto report = tier.SubmitBatch(request);
    out.push_back(report.ok() ? json::Dump(wire::Encode(*report))
                              : report.status().ToString());
  }
  for (const api::SweepRequest& request : SweepTrace()) {
    auto report = tier.RunSweep(request);
    out.push_back(report.ok() ? json::Dump(wire::Encode(*report))
                              : report.status().ToString());
  }
  return out;
}

TEST(RouterProperty, ShardedReportsAreByteIdenticalToUnsharded) {
  const core::Catalog catalog = WideCatalog();
  for (const size_t pool : {size_t{1}, size_t{4}}) {
    api::ServiceConfig config;
    config.execution.worker_threads = pool;
    config.cache.availability_quantum = 0.05;

    auto unsharded = api::Service::Create(catalog, config);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    const std::vector<std::string> expected = RunTrace(*unsharded);

    // Sanity on the trace itself: it exercises both outcome kinds.
    EXPECT_NE(expected[6].find("k must be >= 1"), std::string::npos)
        << "the invalid-k case should fail the whole batch";
    EXPECT_EQ(expected[0].rfind("{", 0), 0u);

    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      RouterConfig router_config;
      router_config.shards = shards;
      router_config.service = config;
      router_config.router_threads = pool;
      auto router = ShardRouter::Create(catalog, router_config);
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      EXPECT_EQ(router->shards(), shards);

      const std::vector<std::string> actual = RunTrace(*router);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i])
            << "trace case " << i << " diverged at shards=" << shards
            << " pool=" << pool;
      }
    }
  }
}

// Replication must not bend the anchor: with R replicas per shard and
// injected replica failures forcing failover on every dispatch to a dead
// replica, reports stay byte-identical to the unsharded Service. The
// injected sites kill all-but-one replica per shard, so failover always
// lands on a live copy and the property is exact, not probabilistic.
TEST(RouterProperty, ReplicatedFailoverPreservesByteIdentity) {
  const core::Catalog catalog = WideCatalog();
  for (const size_t pool : {size_t{1}, size_t{4}}) {
    api::ServiceConfig config;
    config.execution.worker_threads = pool;
    config.cache.availability_quantum = 0.05;

    auto unsharded = api::Service::Create(catalog, config);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    const std::vector<std::string> expected = RunTrace(*unsharded);

    for (const size_t replicas : {size_t{1}, size_t{2}, size_t{3}}) {
      // Dead-replica sites (rate 1.0), leaving exactly one live replica
      // per shard; replicas == 1 runs fault-free as the control.
      fault::FaultConfig faults;
      faults.seed = 0xFA11 + replicas;
      if (replicas == 2) {
        faults.sites.emplace_back(fault::ReplicaSiteName(0, 0),
                                  fault::SiteSpec{1.0, 0.0});
        faults.sites.emplace_back(fault::ReplicaSiteName(1, 1),
                                  fault::SiteSpec{1.0, 0.0});
      } else if (replicas == 3) {
        faults.sites.emplace_back(fault::ReplicaSiteName(0, 0),
                                  fault::SiteSpec{1.0, 0.0});
        faults.sites.emplace_back(fault::ReplicaSiteName(0, 1),
                                  fault::SiteSpec{1.0, 0.0});
        faults.sites.emplace_back(fault::ReplicaSiteName(1, 2),
                                  fault::SiteSpec{1.0, 0.0});
      }
      std::shared_ptr<fault::FaultPlan> plan;
      if (replicas > 1) {
        plan = fault::InstallGlobalFaultPlan(std::move(faults));
      } else {
        fault::ClearGlobalFaultPlan();
      }

      RouterConfig router_config;
      router_config.shards = 2;
      router_config.replicas = replicas;
      router_config.replica_seed = 0x51EC;
      router_config.service = config;
      router_config.router_threads = pool;
      auto router = ShardRouter::Create(catalog, router_config);
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      EXPECT_EQ(router->replicas(), replicas);

      const std::vector<std::string> actual = RunTrace(*router);
      fault::ClearGlobalFaultPlan();
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i])
            << "trace case " << i << " diverged at replicas=" << replicas
            << " pool=" << pool;
      }
      if (replicas > 1) {
        // Dispatches that picked a dead replica must have failed over, and
        // none of the injected failures may leak into reported outcomes.
        EXPECT_GT(router->stats().failovers, 0u)
            << "replicas=" << replicas << " pool=" << pool;
        ASSERT_NE(plan, nullptr);
        EXPECT_GT(plan->TotalInjected(), 0u);
      }
    }
  }
}

TEST(RouterProperty, RouterCountsItsOwnTraffic) {
  RouterConfig config;
  config.shards = 2;
  config.service.execution.worker_threads = 2;
  auto router = ShardRouter::Create(WideCatalog(), config);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  api::BatchRequest batch;
  batch.requests = MixedRequests();
  batch.availability = api::AvailabilitySpec::Fixed(0.8);
  ASSERT_TRUE(router->SubmitBatch(batch).ok());

  api::SweepRequest sweep;
  sweep.targets = {{"t1", {0.9, 0.1, 0.1}, 1}};
  sweep.availability = api::AvailabilitySpec::Fixed(0.8);
  ASSERT_TRUE(router->RunSweep(sweep).ok());

  const api::ServiceStats stats = router->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.requests_processed, MixedRequests().size());
  // Every scatter warms (or hits) the shard snapshot caches.
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(RouterProperty, ServiceAssignedIdsMatchTheUnshardedFormat) {
  RouterConfig config;
  config.shards = 2;
  auto router = ShardRouter::Create(WideCatalog(), config);
  ASSERT_TRUE(router.ok());
  api::BatchRequest batch;
  batch.requests = MixedRequests();
  batch.availability = api::AvailabilitySpec::Fixed(0.8);
  auto report = router->SubmitBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->request_id, "batch-000001");
}

TEST(RouterProperty, CreateRejectsDegenerateShapes) {
  RouterConfig config;
  config.shards = 0;
  EXPECT_EQ(ShardRouter::Create(WideCatalog(), config).status().code(),
            StatusCode::kInvalidArgument);
  config.shards = 11;  // one more than the catalog holds
  EXPECT_EQ(ShardRouter::Create(WideCatalog(), config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RouterProperty, AvailabilityModelsResolveOnTheRouter) {
  RouterConfig config;
  config.shards = 3;
  auto router = ShardRouter::Create(WideCatalog(), config);
  ASSERT_TRUE(router.ok());
  auto night = core::AvailabilityModel::FromPmf({{0.35, 1.0}});
  ASSERT_TRUE(night.ok());
  ASSERT_TRUE(router->RegisterAvailabilityModel("night-shift", *night).ok());
  EXPECT_EQ(router->RegisterAvailabilityModel("night-shift", *night).code(),
            StatusCode::kFailedPrecondition);

  api::BatchRequest batch;
  batch.requests = MixedRequests();
  batch.availability = api::AvailabilitySpec::Named("night-shift");
  auto report = router->SubmitBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->availability, 0.35);

  batch.availability = api::AvailabilitySpec::Named("missing");
  EXPECT_EQ(router->SubmitBatch(batch).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace stratrec
