// Journal subsystem tests: writer/reader framing, the Service taps under
// synchronous and concurrent async load (cancelled tickets included),
// caller-supplied request ids, executor gauges in ServiceStats, and
// trace-driven replay reproducing recorded reports byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/registry.h"
#include "src/api/replay.h"
#include "src/common/journal.h"

namespace stratrec::api {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "stratrec_" + name + ".journal";
}

core::Catalog Table1Catalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

BatchRequest Table1Batch() {
  BatchRequest batch;
  batch.requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
  batch.availability = AvailabilitySpec::Fixed(0.8);
  batch.aggregation = core::AggregationMode::kMax;
  return batch;
}

// ---------------------------------------------------------------------------
// Writer / reader framing.
// ---------------------------------------------------------------------------

TEST(Journal, WriterReaderRoundTrip) {
  const std::string path = TempPath("roundtrip");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE((*writer)->Append("{\"kind\":\"a\"}").ok());
    EXPECT_TRUE((*writer)->Append("{\"kind\":\"b\"}").ok());
    EXPECT_EQ((*writer)->records_written(), 2u);
  }
  auto records = JournalReader::ReadRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(records->front(), "{\"kind\":\"a\"}");
  EXPECT_EQ(records->back(), "{\"kind\":\"b\"}");
}

TEST(Journal, ReaderValidatesHeaderAndDropsTruncatedTail) {
  EXPECT_EQ(JournalReader::ReadRecords(TempPath("missing")).status().code(),
            StatusCode::kNotFound);

  const std::string path = TempPath("framing");
  {  // Foreign format name.
    FILE* f = fopen(path.c_str(), "wb");
    fputs("{\"format\":\"other\",\"version\":1}\nrec\n", f);
    fclose(f);
    EXPECT_EQ(JournalReader::ReadRecords(path).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // Newer version.
    FILE* f = fopen(path.c_str(), "wb");
    fputs("{\"format\":\"stratrec-journal\",\"version\":99}\nrec\n", f);
    fclose(f);
    EXPECT_EQ(JournalReader::ReadRecords(path).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // A crash-truncated final line (no '\n') is dropped, not an error.
    FILE* f = fopen(path.c_str(), "wb");
    const std::string header = "{\"format\":\"stratrec-journal\",\"version\":" +
                               std::to_string(kJournalFormatVersion) + "}";
    fputs((header + "\nwhole\ntorn").c_str(), f);
    fclose(f);
    auto records = JournalReader::ReadRecords(path);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ(records->front(), "whole");
  }
}

// ---------------------------------------------------------------------------
// Segment rotation.
// ---------------------------------------------------------------------------

// TempDir persists across runs; stale segments from an earlier run must not
// leak into a rotation chain read.
void RemoveSegments(const std::string& path) {
  std::remove(path.c_str());
  for (int i = 1; i <= 32; ++i) {
    std::remove((path + "." + std::to_string(i)).c_str());
  }
}

TEST(Journal, SegmentRotationRollsAndReadsBackInOrder) {
  const std::string path = TempPath("rotation");
  RemoveSegments(path);
  const std::string record(40, 'r');  // uniform 41-byte lines
  {
    auto writer = JournalWriter::Open(path, /*flush_every_record=*/true,
                                      /*max_segment_bytes=*/128);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)->Append(record + std::to_string(i)).ok());
    }
    EXPECT_EQ((*writer)->records_written(), 10u);
  }
  // Rotation actually happened: the base file holds only a prefix, and at
  // least one numbered segment exists with its own valid header.
  auto base = JournalReader::ReadRecords(path);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_LT(base->size(), 10u);
  auto second = JournalReader::ReadRecords(path + ".1");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->size(), 0u);

  // The chain read returns every record in write order.
  auto all = JournalReader::ReadAllSegments(path);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*all)[i], record + std::to_string(i));
  }
}

TEST(Journal, OversizedRecordGetsASegmentToItself) {
  const std::string path = TempPath("oversized");
  RemoveSegments(path);
  const std::string huge(500, 'h');  // larger than the whole segment bound
  {
    auto writer = JournalWriter::Open(path, true, /*max_segment_bytes=*/64);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(huge).ok());   // stays: segment was empty
    ASSERT_TRUE((*writer)->Append("tiny").ok());  // rolls first
  }
  auto base = JournalReader::ReadRecords(path);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 1u);
  EXPECT_EQ(base->front(), huge);
  auto all = JournalReader::ReadAllSegments(path);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ(all->back(), "tiny");
}

// Readers accept the kJournalMinReadVersion..kJournalFormatVersion window.
// The v7 bump (fault-tolerance counters, deadline_ms) only *adds* optional
// fields, so v6 files stay replayable; v5 and older changed record shapes
// and must still be rejected, as must anything newer than this build.
TEST(Journal, VersionWindowAcceptsV6AndRejectsOutsiders) {
  const auto write_version = [](const std::string& path, int version) {
    FILE* f = fopen(path.c_str(), "wb");
    fputs(("{\"format\":\"stratrec-journal\",\"version\":" +
           std::to_string(version) + "}\nrec\n")
              .c_str(),
          f);
    fclose(f);
  };
  static_assert(kJournalFormatVersion == 7);
  static_assert(kJournalMinReadVersion == 6);

  const std::string path = TempPath("version_window");
  write_version(path, kJournalMinReadVersion);  // v6: decode-compat
  auto records = JournalReader::ReadRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(records->front(), "rec");

  write_version(path, kJournalMinReadVersion - 1);  // v5: too old
  EXPECT_EQ(JournalReader::ReadRecords(path).status().code(),
            StatusCode::kInvalidArgument);
  write_version(path, kJournalFormatVersion + 1);  // v8: from the future
  EXPECT_EQ(JournalReader::ReadRecords(path).status().code(),
            StatusCode::kInvalidArgument);
}

// The writer stamps the current version on every fresh segment.
TEST(Journal, WriterStampsTheCurrentFormatVersion) {
  const std::string path = TempPath("stamped_version");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("r").ok());
  }
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[128] = {};
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);
  fclose(f);
  EXPECT_EQ(std::string(line),
            "{\"format\":\"stratrec-journal\",\"version\":" +
                std::to_string(kJournalFormatVersion) + "}\n");
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

TEST(Journal, CompactionRequiresRotationAndSaneRetention) {
  JournalWriter::Options options;
  options.compact_after_segments = 2;  // but no max_segment_bytes
  EXPECT_EQ(JournalWriter::Open(TempPath("bad_compact1"), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.max_segment_bytes = 128;
  options.retain_segments = 2;  // must be < compact_after_segments
  EXPECT_EQ(JournalWriter::Open(TempPath("bad_compact2"), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// The writer folds cold segments through a caller-supplied, codec-agnostic
// callback; the chain stays readable and keeps the fold's output plus the
// retained tail, in order.
TEST(Journal, WriterFoldsColdSegmentsThroughTheCallback) {
  const std::string path = TempPath("compaction");
  RemoveSegments(path);
  const std::string record(40, 'r');  // uniform 41-byte lines, 2 per segment
  {
    JournalWriter::Options options;
    options.max_segment_bytes = 96;
    options.compact_after_segments = 2;
    options.retain_segments = 1;
    options.compact = [](const std::vector<std::string>& cold) {
      return std::vector<std::string>{
          "{\"kind\":\"folded\",\"count\":" + std::to_string(cold.size()) +
          "}"};
    };
    auto writer = JournalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE((*writer)->Append(record + std::to_string(i)).ok());
    }
    EXPECT_GT((*writer)->compactions(), 0u);
    EXPECT_EQ((*writer)->records_written(), 12u);
  }
  auto all = JournalReader::ReadAllSegments(path);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  // The fold's output leads the chain, and fewer raw records remain than
  // were written (the rest live inside the summary).
  ASSERT_FALSE(all->empty());
  EXPECT_NE(all->front().find("\"kind\":\"folded\""), std::string::npos);
  EXPECT_LT(all->size(), 12u);
  // The retained tail is the most recent records, still in write order.
  const std::string& last = all->back();
  EXPECT_EQ(last, record + "11");
}

TEST(Journal, ServiceTraceSpansSegmentsAndStillReplays) {
  const std::string path = TempPath("segmented_trace");
  RemoveSegments(path);
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.journal.path = path;
  // Small enough that the config/catalog records and three batch pairs
  // cannot share one segment.
  config.journal.max_segment_bytes = 2048;
  {
    auto service = Service::Create(Table1Catalog(), config);
    ASSERT_TRUE(service.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(service->SubmitBatch(Table1Batch()).ok());
    }
  }
  ASSERT_TRUE(JournalReader::ReadRecords(path + ".1").ok())
      << "expected the trace to roll past the first segment";

  // ReadTraceFile follows the chain: the full workload is one trace.
  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->has_config);
  EXPECT_TRUE(trace->has_catalog);
  EXPECT_EQ(trace->config.journal.max_segment_bytes, 2048u);
  ASSERT_EQ(trace->pairs.size(), 3u);

  auto replayed = wire::ReplayTrace(*trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->replayed, 3u);
  EXPECT_EQ(replayed->matched, 3u);
}

// ---------------------------------------------------------------------------
// Service taps.
// ---------------------------------------------------------------------------

TEST(Journal, ServiceRecordsConfigCatalogAndPairs) {
  const std::string path = TempPath("sync_pairs");
  BatchReport batch_report;
  SweepReport sweep_report;
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 2;
  config.journal.path = path;
  {
    auto service = Service::Create(Table1Catalog(), config);
    ASSERT_TRUE(service.ok());

    auto batch = service->SubmitBatch(Table1Batch());
    ASSERT_TRUE(batch.ok());
    batch_report = *batch;

    SweepRequest sweep;
    sweep.targets = {{"t1", {0.9, 0.1, 0.1}, 2}, {"t2", {0.5, 0.9, 0.9}, 9}};
    sweep.solvers = {"exact"};
    sweep.availability = AvailabilitySpec::Fixed(0.8);
    auto swept = service->RunSweep(sweep);
    ASSERT_TRUE(swept.ok());
    sweep_report = *swept;
  }

  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->has_config);
  EXPECT_TRUE(trace->has_catalog);
  EXPECT_TRUE(trace->catalog.strategies == Table1Catalog().strategies);
  EXPECT_EQ(trace->config.execution.worker_threads, 2u);
  ASSERT_EQ(trace->pairs.size(), 2u);

  const wire::PairRecord& recorded_batch = trace->pairs[0];
  EXPECT_EQ(recorded_batch.kind, wire::PairRecord::Kind::kBatch);
  EXPECT_TRUE(recorded_batch.status.ok());
  EXPECT_TRUE(recorded_batch.batch_report == batch_report);
  EXPECT_TRUE(recorded_batch.batch_request == Table1Batch());

  const wire::PairRecord& recorded_sweep = trace->pairs[1];
  EXPECT_EQ(recorded_sweep.kind, wire::PairRecord::Kind::kSweep);
  EXPECT_TRUE(recorded_sweep.status.ok());
  EXPECT_TRUE(recorded_sweep.sweep_report == sweep_report);
  // The infeasible t2 cell (k=9 > |S|) travels inside the OK report.
  ASSERT_EQ(recorded_sweep.sweep_report.outcomes.size(), 2u);
  EXPECT_EQ(recorded_sweep.sweep_report.outcomes[1].status.code(),
            StatusCode::kInfeasible);

  // Replay the trace at a different pool size: byte-identical reports.
  wire::ReplayOptions options;
  options.worker_threads = 3;
  auto replayed = wire::ReplayTrace(*trace, options);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->replayed, 2u);
  EXPECT_EQ(replayed->matched, 2u);
  EXPECT_EQ(replayed->skipped, 0u);
  EXPECT_TRUE(replayed->ok());
}

TEST(Journal, CallerSuppliedRequestIdIsAdopted) {
  const std::string path = TempPath("caller_id");
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.journal.path = path;
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  BatchRequest request = Table1Batch();
  request.request_id = "front-end/42";
  auto ticket = service->SubmitBatchAsync(request);
  EXPECT_EQ(ticket.id(), "front-end/42");
  auto report = ticket.Wait();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->request_id, "front-end/42");
  // The next service-assigned id is unaffected.
  auto assigned = service->SubmitBatch(Table1Batch());
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned->request_id.rfind("batch-", 0), 0u);
}

// A batch backend that parks the single worker until released, so queued
// tickets provably stay queued (same idiom as async_service_test).
struct JournalGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;
};
JournalGate& Gate() {
  static JournalGate* gate = new JournalGate();
  return *gate;
}

TEST(Journal, AsyncLoadRecordsExactlyTheCompletedPairsAndReplays) {
  ASSERT_TRUE(AlgorithmRegistry::Global()
                  .RegisterBatch(
                      "journal-gate",
                      [](const std::vector<core::DeploymentRequest>& requests,
                         const std::vector<core::StrategyProfile>&, double,
                         const core::BatchOptions&)
                          -> Result<core::BatchResult> {
                        JournalGate& gate = Gate();
                        std::unique_lock<std::mutex> lock(gate.mutex);
                        gate.entered = true;
                        gate.cv.notify_all();
                        gate.cv.wait(lock,
                                     [&gate]() { return gate.released; });
                        core::BatchResult result;
                        result.outcomes.resize(requests.size());
                        return result;
                      })
                  .ok());

  const std::string path = TempPath("async_load");
  std::set<std::string> completed_ids;
  std::string cancelled_id;
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 1;  // FIFO: provable queueing
  config.journal.path = path;
  {
    auto service = Service::Create(Table1Catalog(), config);
    ASSERT_TRUE(service.ok());

    BatchRequest gated = Table1Batch();
    gated.algorithm = "journal-gate";
    gated.recommend_alternatives = false;
    auto running = service->SubmitBatchAsync(gated);
    {
      JournalGate& gate = Gate();
      std::unique_lock<std::mutex> lock(gate.mutex);
      gate.cv.wait(lock, [&gate]() { return gate.entered; });
    }

    // Concurrent submissions while the worker is parked; all stay queued.
    std::vector<Ticket<BatchReport>> tickets;
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(service->SubmitBatchAsync(Table1Batch()));
    }

    // With the worker parked, the executor gauges are deterministic.
    const ServiceStats mid = service->stats();
    EXPECT_EQ(mid.active_workers, 1u);
    EXPECT_EQ(mid.queue_depth, 4u);

    ASSERT_TRUE(tickets[1].Cancel());
    cancelled_id = tickets[1].id();

    {
      std::lock_guard<std::mutex> lock(Gate().mutex);
      Gate().released = true;
    }
    Gate().cv.notify_all();

    completed_ids.insert(running.id());
    ASSERT_TRUE(running.Wait().ok());
    for (int i = 0; i < 4; ++i) {
      if (i == 1) continue;
      completed_ids.insert(tickets[i].id());
      ASSERT_TRUE(tickets[i].Wait().ok());
    }
  }  // service destructor drains the queue -> every record is on disk

  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->pairs.size(), 5u);  // 4 completed + 1 cancelled

  std::set<std::string> recorded_ok;
  size_t recorded_cancelled = 0;
  for (const wire::PairRecord& pair : trace->pairs) {
    if (pair.status.ok()) {
      recorded_ok.insert(pair.request_id);
    } else {
      EXPECT_EQ(pair.status.code(), StatusCode::kCancelled);
      EXPECT_EQ(pair.request_id, cancelled_id);
      // The withdrawn request itself is preserved.
      EXPECT_TRUE(pair.batch_request == Table1Batch());
      ++recorded_cancelled;
    }
  }
  EXPECT_EQ(recorded_ok, completed_ids);
  EXPECT_EQ(recorded_cancelled, 1u);

  // Replay skips the cancelled pair and reproduces the completed four.
  auto replayed = wire::ReplayTrace(*trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->skipped, 1u);
  EXPECT_EQ(replayed->replayed, 4u);
  EXPECT_EQ(replayed->matched, 4u);
}

TEST(Journal, RecordCancelledCanBeDisabled) {
  const std::string path = TempPath("no_cancelled");
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 1;
  config.journal.path = path;
  config.journal.record_cancelled = false;
  {
    auto service = Service::Create(Table1Catalog(), config);
    ASSERT_TRUE(service.ok());
    // Park the worker with a slow-but-normal batch? Not needed: cancel can
    // only win while queued, so stack two submissions and cancel the second
    // immediately — if the race is lost the pair is recorded as completed,
    // so only count cancelled records.
    auto first = service->SubmitBatchAsync(Table1Batch());
    auto second = service->SubmitBatchAsync(Table1Batch());
    second.Cancel();
    (void)first.Wait();
    (void)second.Wait();
  }
  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok());
  for (const wire::PairRecord& pair : trace->pairs) {
    EXPECT_TRUE(pair.status.ok());  // no cancelled records on disk
  }
}

TEST(Journal, StatsSnapshotsLandInTheTraceAndReplayIgnoresThem) {
  const std::string path = TempPath("stats_snapshots");
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 1;
  config.journal.path = path;
  // A finished batch can leave one already-claimed ParallelFor helper in a
  // deque for a beat after Wait() returns; poll the gauge to zero before
  // snapshotting so the recorded queue_depth is deterministic.
  const auto drained_snapshot = [](const Service& service) {
    while (service.stats().queue_depth != 0) std::this_thread::yield();
    return service.RecordStatsSnapshot();
  };
  {
    auto service = Service::Create(Table1Catalog(), config);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(service->SubmitBatch(Table1Batch()).ok());
    ASSERT_TRUE(drained_snapshot(*service).ok());
    ASSERT_TRUE(service->SubmitBatch(Table1Batch()).ok());
    ASSERT_TRUE(drained_snapshot(*service).ok());
  }
  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  // Two checkpoints interleaved with two pairs: the lifetime counters
  // advance between them and the pool is drained at snapshot time (the
  // sync submissions have completed), so queue_depth is deterministic.
  ASSERT_EQ(trace->stats.size(), 2u);
  EXPECT_EQ(trace->stats[0].stats.batches, 1u);
  EXPECT_EQ(trace->stats[1].stats.batches, 2u);
  EXPECT_EQ(trace->stats[0].stats.queue_depth, 0u);
  EXPECT_EQ(trace->stats[1].stats.queue_depth, 0u);

  // Checkpoints never disturb the replay contract: the pairs replay and
  // bit-match exactly as they would without them.
  ASSERT_EQ(trace->pairs.size(), 2u);
  auto replayed = wire::ReplayTrace(*trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->replayed, 2u);
  EXPECT_EQ(replayed->matched, 2u);
}

TEST(Journal, StatsSnapshotRequiresJournaling) {
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->RecordStatsSnapshot().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Journal, ReplayRequiresConfigAndCatalog) {
  wire::JournalTrace trace;
  EXPECT_EQ(wire::ServiceFromTrace(trace).status().code(),
            StatusCode::kFailedPrecondition);
  trace.has_config = true;
  trace.config.batch.aggregation = core::AggregationMode::kMax;
  EXPECT_EQ(wire::ServiceFromTrace(trace).status().code(),
            StatusCode::kFailedPrecondition);
  trace.has_catalog = true;
  trace.catalog = Table1Catalog();
  auto service = wire::ServiceFromTrace(trace);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
}

}  // namespace
}  // namespace stratrec::api
