// Whole-facade property sweep: StratRec::ProcessBatch across the full
// configuration cross-product (objective x aggregation x workforce policy x
// algorithm) on random workloads, asserting the global invariants that must
// hold regardless of configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/stratrec.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

class FacadePropertyTest
    : public testing::TestWithParam<
          std::tuple<Objective, AggregationMode, WorkforcePolicy,
                     BatchAlgorithm, uint64_t>> {
 protected:
  void SetUp() override {
    workload::Generator generator({}, std::get<4>(GetParam()));
    profiles_ = generator.Profiles(40);
    for (size_t j = 0; j < profiles_.size(); ++j) {
      strategies_.emplace_back("s" + std::to_string(j),
                               AllStageSpecs()[j % 8]);
    }
    requests_ = generator.RequestsWithRanges(12, 3, {0.5, 0.8}, {0.6, 1.0},
                                             {0.6, 1.0});
    options_.batch.objective = std::get<0>(GetParam());
    options_.batch.aggregation = std::get<1>(GetParam());
    options_.batch.policy = std::get<2>(GetParam());
    options_.algorithm = std::get<3>(GetParam());
  }

  std::vector<Strategy> strategies_;
  std::vector<StrategyProfile> profiles_;
  std::vector<DeploymentRequest> requests_;
  StratRecOptions options_;
};

TEST_P(FacadePropertyTest, GlobalInvariantsHold) {
  auto stratrec = StratRec::Create(strategies_, profiles_);
  ASSERT_TRUE(stratrec.ok());
  for (double w : {0.3, 0.7, 1.0}) {
    auto report =
        stratrec->ProcessBatchAtAvailability(requests_, w, options_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    const BatchResult& batch = report->aggregator.batch;
    // 1. Partition: every request is satisfied xor unsatisfied.
    EXPECT_EQ(batch.satisfied.size() + batch.unsatisfied.size(),
              requests_.size());
    // 2. Capacity discipline.
    EXPECT_LE(batch.workforce_used, w + 1e-9);
    // 3. Satisfied requests carry exactly k strategies; each is feasible,
    //    fits within W, and meets the thresholds at its *allocated*
    //    workforce (not at W — cost rises with workforce, so a strategy is
    //    deployed at its requirement, below which the budget would hold).
    for (size_t i : batch.satisfied) {
      const RequestOutcome& outcome = batch.outcomes[i];
      EXPECT_EQ(outcome.strategies.size(),
                static_cast<size_t>(requests_[i].k));
      for (size_t j : outcome.strategies) {
        const WorkforceCell cell = ComputeWorkforceCell(
            profiles_[j], requests_[i].thresholds, options_.batch.policy);
        EXPECT_TRUE(cell.feasible);
        EXPECT_LE(cell.requirement, w + 1e-9);
        const ParamVector at_allocation =
            profiles_[j].EstimateParams(cell.requirement);
        EXPECT_TRUE(Satisfies(at_allocation, requests_[i].thresholds))
            << "request " << i << " strategy " << j << " W=" << w;
      }
    }
    // 4. Every unsatisfied request received an alternative or an explicit
    //    ADPaR failure.
    EXPECT_EQ(batch.unsatisfied.size(),
              report->alternatives.size() + report->adpar_failures.size());
    // 5. Alternatives are valid relaxations covering k strategies.
    for (const auto& alt : report->alternatives) {
      const ParamVector& d = requests_[alt.request_index].thresholds;
      const ParamVector& d_prime = alt.result.alternative;
      EXPECT_LE(d_prime.quality, d.quality + 1e-9);
      EXPECT_GE(d_prime.cost, d.cost - 1e-9);
      EXPECT_GE(d_prime.latency, d.latency - 1e-9);
      EXPECT_EQ(alt.result.strategies.size(),
                static_cast<size_t>(requests_[alt.request_index].k));
      for (size_t j : alt.result.strategies) {
        EXPECT_TRUE(
            Satisfies(report->aggregator.strategy_params[j], d_prime));
      }
    }
    // 6. Objective bookkeeping: total equals the sum over satisfied.
    double recomputed = 0.0;
    for (size_t i : batch.satisfied) {
      recomputed += batch.outcomes[i].objective_value;
    }
    EXPECT_NEAR(recomputed, batch.total_objective, 1e-9);
  }
}

TEST_P(FacadePropertyTest, DeterministicAcrossRuns) {
  auto stratrec = StratRec::Create(strategies_, profiles_);
  ASSERT_TRUE(stratrec.ok());
  auto a = stratrec->ProcessBatchAtAvailability(requests_, 0.6, options_);
  auto b = stratrec->ProcessBatchAtAvailability(requests_, 0.6, options_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->aggregator.batch.satisfied, b->aggregator.batch.satisfied);
  EXPECT_DOUBLE_EQ(a->aggregator.batch.total_objective,
                   b->aggregator.batch.total_objective);
  ASSERT_EQ(a->alternatives.size(), b->alternatives.size());
  for (size_t i = 0; i < a->alternatives.size(); ++i) {
    EXPECT_EQ(a->alternatives[i].result.strategies,
              b->alternatives[i].result.strategies);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrossProduct, FacadePropertyTest,
    testing::Combine(
        testing::Values(Objective::kThroughput, Objective::kPayoff),
        testing::Values(AggregationMode::kSum, AggregationMode::kMax),
        testing::Values(WorkforcePolicy::kMinimalWorkforce,
                        WorkforcePolicy::kPaperMaxOfThree),
        testing::Values(BatchAlgorithm::kBatchStrat,
                        BatchAlgorithm::kBaselineG,
                        BatchAlgorithm::kBruteForce),
        testing::Values(0xFACEu, 0xFACE2u)));

}  // namespace
}  // namespace stratrec::core
