// Stream subsystem tests: the incremental snapshot's bit-equivalence with
// fresh full rebuilds after arbitrary event interleavings, StreamScheduler's
// decision parity with the PR-0 OnlineScheduler, stream record -> replay
// byte-identity across pool sizes, and replay over a compacted journal
// chain (folded session prefixes are skipped, everything else reproduces).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/replay.h"
#include "src/api/service.h"
#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/core/catalog_index.h"
#include "src/core/online.h"
#include "src/stream/incremental_snapshot.h"
#include "src/stream/stream_scheduler.h"
#include "src/workload/generators.h"

namespace stratrec::api {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "stratrec_" + name + ".journal";
}

// TempDir persists across runs; stale segments from an earlier run must not
// leak into a chain read.
void RemoveSegments(const std::string& path) {
  std::remove(path.c_str());
  for (int i = 1; i <= 32; ++i) {
    std::remove((path + "." + std::to_string(i)).c_str());
  }
}

std::vector<core::DeploymentRequest> PoolRequests(uint64_t seed, int count,
                                                  int k) {
  workload::Generator generator({}, seed);
  auto requests = generator.RequestsWithRanges(count, k, {0.5, 0.75},
                                               {0.7, 1.0}, {0.7, 1.0});
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = "req-" + std::to_string(i);
  }
  return requests;
}

void ExpectOrderingsEqual(const core::AdparOrderings& a,
                          const core::AdparOrderings& b) {
  EXPECT_EQ(a.by_cost, b.by_cost);
  EXPECT_EQ(a.by_quality_desc, b.by_quality_desc);
  EXPECT_EQ(a.skyline, b.skyline);
  EXPECT_EQ(a.skyline_dominators, b.skyline_dominators);
}

// ---------------------------------------------------------------------------
// IncrementalSnapshot == full rebuild, property-checked.
// ---------------------------------------------------------------------------

// After any interleaving of absorbed events and availability moves, the
// incrementally maintained params block and (lazily re-sorted) orderings
// must be bit-identical to a fresh CatalogIndex::BuildSnapshot at the same
// quantized W — the invariant that makes stream replay deterministic.
TEST(IncrementalSnapshot, MatchesFullRebuildAfterArbitraryInterleavings) {
  workload::Generator generator({}, 0x5EED'0001ull);
  const auto profiles = generator.Profiles(300);
  const core::CatalogIndex index = core::CatalogIndex::Build(profiles);

  for (uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(0xABC0ull + trial);
    // Half the trials quantize; half advance on any W move at all.
    const double quantum = trial % 2 == 0 ? 0.05 : 0.0;
    stream::IncrementalSnapshot snapshot(&index, nullptr, rng.Uniform(),
                                         quantum);
    for (int step = 0; step < 40; ++step) {
      const double roll = rng.Uniform();
      if (roll < 0.5) {
        snapshot.NoteAbsorbedEvent();  // arrival / revocation / completion
      } else if (roll < 0.8) {
        snapshot.Advance(rng.Uniform());  // jump anywhere in [0, 1)
      } else {
        // Small drift; under the quantum this absorbs without a rebuild.
        snapshot.Advance(snapshot.quantized_availability() +
                         rng.Uniform(-0.02, 0.02));
      }
      if (step % 7 == 0) {
        const auto fresh =
            index.BuildSnapshot(snapshot.quantized_availability());
        EXPECT_EQ(snapshot.params(), fresh->params());
        ExpectOrderingsEqual(snapshot.orderings(), fresh->orderings());
      }
    }
    const auto fresh = index.BuildSnapshot(snapshot.quantized_availability());
    EXPECT_EQ(snapshot.params(), fresh->params());
    ExpectOrderingsEqual(snapshot.orderings(), fresh->orderings());
    EXPECT_GT(snapshot.delta_updates(), 0u);
  }
}

TEST(IncrementalSnapshot, QuantumAbsorbsSubGridDrift) {
  workload::Generator generator({}, 0x5EED'0002ull);
  const auto profiles = generator.Profiles(50);
  const core::CatalogIndex index = core::CatalogIndex::Build(profiles);

  stream::IncrementalSnapshot snapshot(&index, nullptr, 0.5,
                                       /*quantum=*/0.05);
  EXPECT_FALSE(snapshot.Advance(0.51));  // same 0.05 cell
  EXPECT_FALSE(snapshot.Advance(0.49));
  EXPECT_EQ(snapshot.rebuilds(), 0u);
  EXPECT_EQ(snapshot.delta_updates(), 2u);
  EXPECT_TRUE(snapshot.Advance(0.60));  // genuinely moved
  EXPECT_EQ(snapshot.rebuilds(), 1u);
  // Compare at the snapshot's own quantized W: round(0.60 / 0.05) * 0.05 is
  // one ulp above the literal 0.6, and the bit-identity contract is stated
  // against BuildSnapshot(quantized_availability()).
  EXPECT_EQ(snapshot.params(),
            index.BuildSnapshot(snapshot.quantized_availability())->params());
}

// ---------------------------------------------------------------------------
// StreamScheduler == OnlineScheduler, decision by decision.
// ---------------------------------------------------------------------------

// The stream rewrite must keep the PR-0 semantics exactly: same admission
// kinds, strategies, workforce, statuses, and lifetime counters for any
// event interleaving — only the maintenance strategy differs.
TEST(StreamScheduler, DecisionParityWithOnlineScheduler) {
  workload::Generator generator({}, 0x5EED'0003ull);
  const auto profiles = generator.Profiles(200);
  const core::CatalogIndex index = core::CatalogIndex::Build(profiles);
  Executor executor(2);

  for (uint64_t trial = 0; trial < 4; ++trial) {
    const auto requests = PoolRequests(0xFEED'0000ull + trial, 80, 3);
    stream::StreamSchedulerOptions stream_options;
    stream_options.max_pending = 8;
    auto incremental =
        stream::StreamScheduler::Create(&index, &executor, 0.5, stream_options);
    ASSERT_TRUE(incremental.ok());
    core::OnlineOptions online_options;
    online_options.max_pending = 8;
    auto reference =
        core::OnlineScheduler::Create(profiles, 0.5, online_options);
    ASSERT_TRUE(reference.ok());

    Rng rng(0xD1CE'0000ull + trial);
    double w = 0.5;
    size_t next = 0;
    std::vector<std::string> issued;
    for (int step = 0; step < 120; ++step) {
      const double roll = rng.Uniform();
      if (roll < 0.5 && next < requests.size()) {
        const auto& request = requests[next++];
        issued.push_back(request.id);
        auto a = incremental->OnArrival(request);
        auto b = reference->OnArrival(request);
        ASSERT_EQ(a.ok(), b.ok());
        if (a.ok()) {
          EXPECT_EQ(a->decision, *b);
        }
      } else if (roll < 0.75 && !issued.empty()) {
        // Revoke / complete a random issued id — including ids that were
        // rejected or already released, so the failure paths align too.
        const auto& id = issued[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(issued.size()) - 1))];
        if (rng.Bernoulli(0.5)) {
          EXPECT_EQ(incremental->OnRevocation(id).code(),
                    reference->OnRevocation(id).code());
        } else {
          EXPECT_EQ(incremental->OnCompletion(id).code(),
                    reference->OnCompletion(id).code());
        }
      } else {
        w = rng.Uniform(0.2, 0.9);
        EXPECT_TRUE(incremental->SetAvailability(w).ok());
        EXPECT_TRUE(reference->SetAvailability(w).ok());
      }
      EXPECT_DOUBLE_EQ(incremental->used_workforce(),
                       reference->used_workforce());
      EXPECT_EQ(incremental->active(), reference->active());
      EXPECT_EQ(incremental->pending(), reference->pending());
    }
    const core::OnlineStats& a = incremental->stats();
    const core::OnlineStats& b = reference->stats();
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.queued, b.queued);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.revoked, b.revoked);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
  }
}

// ---------------------------------------------------------------------------
// Record -> replay byte-identity.
// ---------------------------------------------------------------------------

/// Drives one journaled session through every event kind (successes and
/// failures) and returns the number of Submit calls made.
size_t DriveRecordedSession(const Service& service, bool alternatives) {
  StreamOptions options;
  options.recommend_alternatives = alternatives;
  auto session = service.OpenStream(options);
  if (!session.ok()) {
    ADD_FAILURE() << "session failed to open: "
                  << session.status().ToString();
    return 0;
  }
  const auto requests = PoolRequests(0xCAFEull, 24, 3);
  size_t events = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    (void)session->Submit(StreamEvent::Arrival(requests[i]));
    ++events;
    if (i % 5 == 2) {
      (void)session->Submit(StreamEvent::Completion(requests[i].id));
      ++events;
    }
    if (i % 7 == 3) {
      (void)session->Submit(StreamEvent::Revocation(requests[i / 2].id));
      ++events;
    }
    if (i % 6 == 4) {
      (void)session->Submit(StreamEvent::AvailabilityChange(
          AvailabilitySpec::Fixed(0.3 + 0.05 * static_cast<double>(i % 8))));
      ++events;
    }
  }
  // A guaranteed failure record: replay must reproduce the Status bytes.
  (void)session->Submit(StreamEvent::Revocation("ghost"));
  ++events;
  return events;
}

TEST(StreamReplay, ByteIdenticalAcrossPoolSizes) {
  const std::string path = TempPath("stream_replay");
  RemoveSegments(path);
  workload::Generator generator({}, 0x5EED'0004ull);
  const auto profiles = generator.Profiles(120);

  size_t recorded_events = 0;
  {
    ServiceConfig config;
    config.journal.path = path;
    auto service = Service::Create(CatalogFromProfiles(profiles), config);
    ASSERT_TRUE(service.ok());
    // The ADPaR-alternatives leg rides the snapshot orderings; record it
    // alongside a plain session so replay covers both shapes.
    recorded_events += DriveRecordedSession(*service, /*alternatives=*/true);
    recorded_events += DriveRecordedSession(*service, /*alternatives=*/false);
  }

  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->stream_opens.size(), 2u);
  ASSERT_EQ(trace->stream_events.size(), recorded_events);

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    wire::ReplayOptions options;
    options.worker_threads = threads;
    auto result = wire::ReplayTrace(*trace, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->ok()) << result->mismatched.size() << " mismatches at "
                              << threads << " threads, first: "
                              << result->mismatched.front();
    EXPECT_EQ(result->stream_sessions, 2u);
    EXPECT_EQ(result->stream_events_replayed, recorded_events);
    EXPECT_EQ(result->stream_matched, recorded_events);
    EXPECT_EQ(result->stream_skipped_sessions, 0u);
  }
}

// Replay rounds re-drive stream sessions under round-suffixed ids, so one
// trace can be used as a bigger deterministic workload.
TEST(StreamReplay, RoundsMultiplySessionsAndStillMatch) {
  const std::string path = TempPath("stream_rounds");
  RemoveSegments(path);
  workload::Generator generator({}, 0x5EED'0005ull);
  const auto profiles = generator.Profiles(60);
  size_t recorded_events = 0;
  {
    ServiceConfig config;
    config.journal.path = path;
    auto service = Service::Create(CatalogFromProfiles(profiles), config);
    ASSERT_TRUE(service.ok());
    recorded_events = DriveRecordedSession(*service, /*alternatives=*/false);
  }
  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok());
  wire::ReplayOptions options;
  options.rounds = 3;
  auto result = wire::ReplayTrace(*trace, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->stream_sessions, 3u);
  EXPECT_EQ(result->stream_matched, 3 * recorded_events);
}

// ---------------------------------------------------------------------------
// Compaction transparency.
// ---------------------------------------------------------------------------

// A journal that compacted while recording still reads as one trace:
// config/catalog/opens survive the fold, and replay skips exactly the
// sessions whose event prefix was folded away (seq gap) — no mismatches.
TEST(StreamReplay, CompactedChainReplaysWithFoldedSessionsSkipped) {
  const std::string path = TempPath("stream_compacted");
  RemoveSegments(path);
  workload::Generator generator({}, 0x5EED'0006ull);
  const auto profiles = generator.Profiles(60);

  size_t recorded_events = 0;
  {
    ServiceConfig config;
    config.journal.path = path;
    // Small segments + an aggressive fold: the early session's events land
    // in segments that are folded away while it is still live.
    config.journal.max_segment_bytes = 2048;
    config.journal.compact_after_segments = 2;
    config.journal.retain_segments = 1;
    auto service = Service::Create(CatalogFromProfiles(profiles), config);
    ASSERT_TRUE(service.ok());
    recorded_events += DriveRecordedSession(*service, /*alternatives=*/false);
    recorded_events += DriveRecordedSession(*service, /*alternatives=*/false);
  }

  auto trace = wire::ReadTraceFile(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->has_config);
  EXPECT_TRUE(trace->has_catalog);
  // Compaction actually dropped cold events; every open survived the fold.
  EXPECT_LT(trace->stream_events.size(), recorded_events)
      << "expected the chain to compact; raise the event count if the "
         "records shrank below two segments";
  EXPECT_EQ(trace->stream_opens.size(), 2u);

  auto result = wire::ReplayTrace(*trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << "replay over a compacted chain must skip, "
                               "never mismatch";
  EXPECT_EQ(result->stream_sessions + result->stream_skipped_sessions, 2u);
  EXPECT_GT(result->stream_skipped_sessions, 0u)
      << "the folded session should be unreconstructible";
  EXPECT_EQ(result->stream_matched, result->stream_events_replayed);
}

}  // namespace
}  // namespace stratrec::api
