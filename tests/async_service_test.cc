// Asynchronous Service API tests: ticket lifecycle (Wait / TryGet / Cancel /
// OnComplete), exactly-once callbacks, cancellation of queued jobs, a
// many-threads stress run across services and sessions, and determinism —
// the async path must bit-match the synchronous one.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/registry.h"
#include "src/api/service.h"
#include "src/workload/generators.h"

namespace stratrec::api {
namespace {

core::Catalog Table1Catalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

std::vector<core::DeploymentRequest> Table1Requests() {
  return {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
}

BatchRequest Table1Batch() {
  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::Fixed(0.8);
  return batch;
}

TEST(AsyncTicket, LifecycleAndSingleConsumption) {
  ServiceConfig config;
  config.execution.worker_threads = 2;
  config.batch.aggregation = core::AggregationMode::kMax;
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->worker_threads(), 2u);

  auto ticket = service->SubmitBatchAsync(Table1Batch());
  EXPECT_EQ(ticket.id().rfind("batch-", 0), 0u);

  auto report = ticket.Wait();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->request_id, ticket.id());
  EXPECT_TRUE(ticket.done());

  // Retrieval is single-consumer.
  auto again = ticket.Wait();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  auto probe = ticket.TryGet();
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->status().code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncTicket, TryGetEventuallyDelivers) {
  ServiceConfig config;
  config.execution.worker_threads = 1;
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  auto ticket = service->RunSweepAsync({Table1Requests(),
                                        {"exact", "brute"},
                                        AvailabilitySpec::Fixed(0.8),
                                        /*request_id=*/{}});
  std::optional<Result<SweepReport>> outcome;
  while (!(outcome = ticket.TryGet()).has_value()) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_EQ((*outcome)->request_id, ticket.id());
  EXPECT_EQ((*outcome)->outcomes.size(), Table1Requests().size() * 2);
}

TEST(AsyncTicket, ErrorsTravelThroughTheTicket) {
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  BatchRequest bad = Table1Batch();
  bad.algorithm = "no-such-backend";
  auto outcome = service->SubmitBatchAsync(std::move(bad)).Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST(AsyncTicket, CallbackFiresExactlyOnce) {
  ServiceConfig config;
  config.execution.worker_threads = 2;
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  constexpr int kTickets = 64;
  std::vector<std::atomic<int>> fired(kTickets);
  std::vector<Ticket<BatchReport>> tickets;
  tickets.reserve(kTickets);
  for (int i = 0; i < kTickets; ++i) {
    tickets.push_back(service->SubmitBatchAsync(Table1Batch()));
    ASSERT_TRUE(tickets.back()
                    .OnComplete([&fired, i](const Result<BatchReport>& r) {
                      EXPECT_TRUE(r.ok());
                      fired[i].fetch_add(1);
                    })
                    .ok());
  }
  for (auto& ticket : tickets) ASSERT_TRUE(ticket.Wait().ok());
  for (int i = 0; i < kTickets; ++i) {
    EXPECT_EQ(fired[i].load(), 1) << "ticket " << i;
  }

  // Registering on an already-finished (but unconsumed) ticket fires inline;
  // a second registration is refused.
  auto late = service->SubmitBatchAsync(Table1Batch());
  while (!late.done()) std::this_thread::yield();
  int late_fired = 0;
  ASSERT_TRUE(
      late.OnComplete([&late_fired](const Result<BatchReport>&) {
        ++late_fired;
      }).ok());
  EXPECT_EQ(late_fired, 1);
  EXPECT_EQ(late.OnComplete([](const Result<BatchReport>&) {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(late.OnComplete(nullptr).code(), StatusCode::kInvalidArgument);
}

// A batch backend that blocks until the test releases it, so a later ticket
// is provably still queued when Cancel() runs. Registered once per process.
struct BlockingGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;
};
BlockingGate& Gate() {
  static BlockingGate* gate = new BlockingGate();
  return *gate;
}

TEST(AsyncTicket, CancelWithdrawsQueuedJobs) {
  ASSERT_TRUE(AlgorithmRegistry::Global()
                  .RegisterBatch(
                      "test-blocking",
                      [](const std::vector<core::DeploymentRequest>& requests,
                         const std::vector<core::StrategyProfile>&, double,
                         const core::BatchOptions&)
                          -> Result<core::BatchResult> {
                        BlockingGate& gate = Gate();
                        std::unique_lock<std::mutex> lock(gate.mutex);
                        gate.entered = true;
                        gate.cv.notify_all();
                        gate.cv.wait(lock, [&gate]() { return gate.released; });
                        core::BatchResult result;
                        result.outcomes.resize(requests.size());
                        return result;
                      })
                  .ok());

  ServiceConfig config;
  config.execution.worker_threads = 1;  // FIFO: one worker, provable queue
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  BatchRequest blocking = Table1Batch();
  blocking.algorithm = "test-blocking";
  blocking.recommend_alternatives = false;
  auto running = service->SubmitBatchAsync(std::move(blocking));
  {
    // The worker is inside the blocking solver; anything submitted now
    // stays queued until it returns.
    BlockingGate& gate = Gate();
    std::unique_lock<std::mutex> lock(gate.mutex);
    gate.cv.wait(lock, [&gate]() { return gate.entered; });
  }

  auto queued = service->SubmitBatchAsync(Table1Batch());
  std::atomic<int> cancelled_callback{0};
  ASSERT_TRUE(queued
                  .OnComplete([&cancelled_callback](
                                  const Result<BatchReport>& r) {
                    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
                    cancelled_callback.fetch_add(1);
                  })
                  .ok());
  EXPECT_TRUE(queued.Cancel());
  EXPECT_FALSE(queued.Cancel());  // already done
  auto outcome = queued.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled_callback.load(), 1);

  {
    std::lock_guard<std::mutex> lock(Gate().mutex);
    Gate().released = true;
  }
  Gate().cv.notify_all();
  ASSERT_TRUE(running.Wait().ok());
  EXPECT_FALSE(running.Cancel());  // finished jobs cannot be cancelled

  // The cancelled job's slot was observed by the worker after the blocking
  // one finished; one more round trip makes the ordering deterministic.
  ASSERT_TRUE(service->SubmitBatch(Table1Batch()).ok());
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.batches, 2u);  // the cancelled job never counts
}

TEST(AsyncService, StressTicketsAcrossServicesAndSessions) {
  workload::Generator generator({}, 0xA51C'0001ull);
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = AvailabilitySpec::Fixed(0.7);
  config.execution.worker_threads = 4;
  auto first =
      Service::Create(CatalogFromProfiles(generator.Profiles(60)), config);
  auto second =
      Service::Create(CatalogFromProfiles(generator.Profiles(40)), config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Service services[] = {*first, *second};

  constexpr int kThreads = 8;
  constexpr int kTicketsPerThread = 24;
  std::atomic<int> failures{0};
  std::atomic<int> callbacks{0};
  std::mutex ids_mutex;
  std::set<std::string> ids;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      workload::Generator local({}, 0xBEEFull + static_cast<uint64_t>(t));
      Service& service = services[t % 2];
      // Every thread also drives a stream session concurrently with its
      // async submissions, so tickets and sessions interleave on the
      // sharded state.
      auto session = service.OpenStream();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<Ticket<BatchReport>> batch_tickets;
      std::vector<Ticket<SweepReport>> sweep_tickets;
      for (int i = 0; i < kTicketsPerThread; ++i) {
        auto requests = local.RequestsWithRanges(4, 2, {0.5, 0.75},
                                                 {0.7, 1.0}, {0.7, 1.0});
        if (i % 4 == 3) {
          SweepRequest sweep;
          sweep.targets = requests;
          sweep.solvers = {"exact"};
          sweep_tickets.push_back(service.RunSweepAsync(std::move(sweep)));
          if (!sweep_tickets.back()
                   .OnComplete([&callbacks](const Result<SweepReport>&) {
                     callbacks.fetch_add(1);
                   })
                   .ok()) {
            failures.fetch_add(1);
          }
        } else {
          BatchRequest batch;
          batch.requests = requests;
          batch_tickets.push_back(service.SubmitBatchAsync(std::move(batch)));
          if (!batch_tickets.back()
                   .OnComplete([&callbacks](const Result<BatchReport>&) {
                     callbacks.fetch_add(1);
                   })
                   .ok()) {
            failures.fetch_add(1);
          }
        }
        auto arrival = session->Arrive(requests[0]);
        if (arrival.ok() &&
            arrival->kind == core::AdmissionDecision::Kind::kAdmitted) {
          (void)session->Complete(requests[0].id);
        }
      }
      // Ids are unique per service (each mints its own counter), so key
      // the uniqueness check by the service the ticket ran on.
      const std::string service_key = "svc" + std::to_string(t % 2) + "/";
      for (auto& ticket : batch_tickets) {
        auto report = ticket.Wait();
        if (!report.ok() || report->request_id != ticket.id()) {
          failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(ids_mutex);
        ids.insert(service_key + report->request_id);
      }
      for (auto& ticket : sweep_tickets) {
        auto report = ticket.Wait();
        if (!report.ok() || report->request_id != ticket.id()) {
          failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(ids_mutex);
        ids.insert(service_key + report->request_id);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(callbacks.load(), kThreads * kTicketsPerThread);
  // Report ids are unique across both services and all modes.
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads * kTicketsPerThread));

  const ServiceStats stats_first = services[0].stats();
  const ServiceStats stats_second = services[1].stats();
  const size_t per_service = kThreads / 2 * kTicketsPerThread;
  EXPECT_EQ(stats_first.batches + stats_first.sweeps, per_service);
  EXPECT_EQ(stats_second.batches + stats_second.sweeps, per_service);
  EXPECT_EQ(stats_first.streams_opened, static_cast<size_t>(kThreads / 2));
}

// ---------------------------------------------------------------------------
// Determinism: the async path must produce bit-identical reports.
// ---------------------------------------------------------------------------

void ExpectSameBatchReport(const BatchReport& sync_report,
                           const BatchReport& async_report) {
  EXPECT_EQ(sync_report.algorithm, async_report.algorithm);
  EXPECT_EQ(sync_report.availability, async_report.availability);  // bitwise
  const core::AggregatorReport& a = sync_report.result.aggregator;
  const core::AggregatorReport& b = async_report.result.aggregator;
  EXPECT_EQ(a.availability, b.availability);
  ASSERT_EQ(a.strategy_params.size(), b.strategy_params.size());
  for (size_t j = 0; j < a.strategy_params.size(); ++j) {
    EXPECT_EQ(a.strategy_params[j].quality, b.strategy_params[j].quality);
    EXPECT_EQ(a.strategy_params[j].cost, b.strategy_params[j].cost);
    EXPECT_EQ(a.strategy_params[j].latency, b.strategy_params[j].latency);
  }
  EXPECT_EQ(a.batch.total_objective, b.batch.total_objective);
  EXPECT_EQ(a.batch.workforce_used, b.batch.workforce_used);
  EXPECT_EQ(a.batch.satisfied, b.batch.satisfied);
  EXPECT_EQ(a.batch.unsatisfied, b.batch.unsatisfied);
  ASSERT_EQ(a.batch.outcomes.size(), b.batch.outcomes.size());
  for (size_t i = 0; i < a.batch.outcomes.size(); ++i) {
    EXPECT_EQ(a.batch.outcomes[i].satisfied, b.batch.outcomes[i].satisfied);
    EXPECT_EQ(a.batch.outcomes[i].workforce, b.batch.outcomes[i].workforce);
    EXPECT_EQ(a.batch.outcomes[i].strategies, b.batch.outcomes[i].strategies);
  }
  ASSERT_EQ(sync_report.result.alternatives.size(),
            async_report.result.alternatives.size());
  for (size_t i = 0; i < sync_report.result.alternatives.size(); ++i) {
    const auto& alt_a = sync_report.result.alternatives[i];
    const auto& alt_b = async_report.result.alternatives[i];
    EXPECT_EQ(alt_a.request_index, alt_b.request_index);
    EXPECT_EQ(alt_a.result.distance, alt_b.result.distance);
    EXPECT_EQ(alt_a.result.alternative.quality, alt_b.result.alternative.quality);
    EXPECT_EQ(alt_a.result.alternative.cost, alt_b.result.alternative.cost);
    EXPECT_EQ(alt_a.result.alternative.latency, alt_b.result.alternative.latency);
  }
  EXPECT_EQ(sync_report.result.adpar_failures,
            async_report.result.adpar_failures);
}

TEST(AsyncDeterminism, BatchBitMatchesSynchronousPathAtEveryPoolSize) {
  workload::Generator generator({}, 0xDE7E'0001ull);
  auto profiles = generator.Profiles(120);

  // A serial reference service (one worker, chunks never split: grain
  // larger than the whole matrix) against the work-stealing pool at every
  // size — on 1 thread the caller runs every chunk itself, on >1 the
  // chunks ride the worker deques and get stolen, and neither may change
  // a single bit of the report.
  ServiceConfig serial;
  serial.batch.aggregation = core::AggregationMode::kMax;
  serial.execution.worker_threads = 1;
  serial.execution.parallel_grain = 1u << 30;

  auto reference = Service::Create(CatalogFromProfiles(profiles), serial);
  ASSERT_TRUE(reference.ok());

  BatchRequest batch;
  batch.requests = generator.RequestsWithRanges(40, 3, {0.55, 0.95},
                                                {0.3, 1.0}, {0.3, 1.0});
  // Low availability on purpose: a good share of the batch must spill into
  // the ADPaR fan-out so the parallel alternatives path is exercised.
  batch.availability = AvailabilitySpec::Fixed(0.25);

  auto sync_report = reference->SubmitBatch(batch);
  ASSERT_TRUE(sync_report.ok()) << sync_report.status().ToString();
  // Some requests must have flowed to ADPaR for the parallel fan-out to be
  // exercised at all.
  ASSERT_FALSE(sync_report->result.alternatives.empty());

  for (const size_t pool_size : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    ServiceConfig parallel = serial;
    parallel.execution.worker_threads = pool_size;
    parallel.execution.parallel_grain = 8;  // force many chunks
    auto sharded = Service::Create(CatalogFromProfiles(profiles), parallel);
    ASSERT_TRUE(sharded.ok());
    auto async_report = sharded->SubmitBatchAsync(batch).Wait();
    ASSERT_TRUE(async_report.ok()) << async_report.status().ToString();
    ExpectSameBatchReport(*sync_report, *async_report);
  }
}

TEST(AsyncDeterminism, SweepBitMatchesSynchronousPathAtEveryPoolSize) {
  workload::Generator generator({}, 0xDE7E'0002ull);
  auto profiles = generator.Profiles(50);

  ServiceConfig serial;
  serial.execution.worker_threads = 1;

  auto reference = Service::Create(CatalogFromProfiles(profiles), serial);
  ASSERT_TRUE(reference.ok());

  SweepRequest sweep;
  sweep.targets = generator.RequestsWithRanges(12, 5, {0.8, 0.99},
                                               {0.05, 0.3}, {0.05, 0.3});
  sweep.solvers = {"exact", "baseline2", "baseline3"};
  sweep.availability = AvailabilitySpec::Fixed(0.5);

  auto sync_report = reference->RunSweep(sweep);
  ASSERT_TRUE(sync_report.ok());

  for (const size_t pool_size : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    ServiceConfig parallel;
    parallel.execution.worker_threads = pool_size;
    auto sharded = Service::Create(CatalogFromProfiles(profiles), parallel);
    ASSERT_TRUE(sharded.ok());
    auto async_report = sharded->RunSweepAsync(sweep).Wait();
    ASSERT_TRUE(async_report.ok());

    ASSERT_EQ(sync_report->outcomes.size(), async_report->outcomes.size());
    for (size_t c = 0; c < sync_report->outcomes.size(); ++c) {
      const SweepOutcome& a = sync_report->outcomes[c];
      const SweepOutcome& b = async_report->outcomes[c];
      EXPECT_EQ(a.target_id, b.target_id);
      EXPECT_EQ(a.solver, b.solver);
      EXPECT_EQ(a.status.code(), b.status.code());
      if (a.status.ok() && b.status.ok()) {
        EXPECT_EQ(a.result.distance, b.result.distance);
        EXPECT_EQ(a.result.strategies, b.result.strategies);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Work-stealing stress and observability through the Service facade.
// ---------------------------------------------------------------------------

TEST(AsyncStress, DeepFanoutUnderConcurrentCancelStorm) {
  // Batches whose alternatives spill into the nested ADPaR fan-out (deep
  // ParallelFor from inside pool tasks) racing a storm of Cancel() calls:
  // every ticket must resolve exactly once — completed with a full report
  // or withdrawn as kCancelled — and the stats must account for all of
  // them. Under the old single-FIFO executor the fan-out helpers of a
  // running ticket queued behind the other 47 tickets; here they ride the
  // worker deques, so the storm cannot starve an in-flight job.
  workload::Generator generator({}, 0x5EA1'0001ull);
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 4;
  config.execution.parallel_grain = 4;  // deep chunking: every batch fans out
  auto service =
      Service::Create(CatalogFromProfiles(generator.Profiles(80)), config);
  ASSERT_TRUE(service.ok());

  constexpr int kTickets = 48;
  std::vector<Ticket<BatchReport>> tickets;
  tickets.reserve(kTickets);
  for (int i = 0; i < kTickets; ++i) {
    BatchRequest batch;
    batch.requests = generator.RequestsWithRanges(6, 2, {0.5, 0.9},
                                                  {0.4, 1.0}, {0.4, 1.0});
    // Low availability: a good share of every batch flows to ADPaR.
    batch.availability = AvailabilitySpec::Fixed(0.3);
    tickets.push_back(service->SubmitBatchAsync(std::move(batch)));
  }

  // Three cancellers race the workers over disjoint ticket stripes.
  std::atomic<int> withdrawn{0};
  std::vector<std::thread> cancellers;
  cancellers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    cancellers.emplace_back([&tickets, &withdrawn, t]() {
      for (size_t i = static_cast<size_t>(t); i < tickets.size(); i += 3) {
        if (i % 2 == 0 && tickets[i].Cancel()) withdrawn.fetch_add(1);
      }
    });
  }
  for (std::thread& canceller : cancellers) canceller.join();

  int completed = 0;
  int cancelled = 0;
  for (auto& ticket : tickets) {
    auto outcome = ticket.Wait();
    if (outcome.ok()) {
      EXPECT_EQ(outcome->request_id, ticket.id());
      ++completed;
    } else {
      ASSERT_EQ(outcome.status().code(), StatusCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, kTickets);
  EXPECT_EQ(cancelled, withdrawn.load());

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.batches, static_cast<size_t>(completed));
  EXPECT_EQ(stats.cancelled, static_cast<size_t>(cancelled));
  // Everything drains: already-claimed fan-out helpers may outlive their
  // ParallelFor by a beat, so poll (the ctest TIMEOUT is the backstop).
  while (stats.queue_depth != 0) {
    std::this_thread::yield();
    stats = service->stats();
  }
}

TEST(AsyncService, StealCountersSurfaceThroughStats) {
  // A chunked batch on a multi-worker pool pushes ParallelFor helpers onto
  // the worker deques; every helper is eventually popped — locally or by a
  // thief — so the facade's steal/local-hit counters must move. (Which of
  // the two moves depends on scheduling; the sum is deterministic > 0.)
  workload::Generator generator({}, 0x5EA1'0002ull);
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 4;
  config.execution.parallel_grain = 4;
  auto service =
      Service::Create(CatalogFromProfiles(generator.Profiles(100)), config);
  ASSERT_TRUE(service.ok());

  // Create itself fans out (the CatalogIndex warm-up rides ParallelFor),
  // so measure the batch's contribution as a delta, not from zero.
  const ServiceStats before = service->stats();

  BatchRequest batch;
  batch.requests = generator.RequestsWithRanges(20, 3, {0.5, 0.9},
                                                {0.4, 1.0}, {0.4, 1.0});
  ASSERT_TRUE(service->SubmitBatch(batch).ok());

  // Helpers the caller out-raced are popped (and counted) moments after the
  // batch returns; poll rather than race them (ctest TIMEOUT backstops).
  ServiceStats after = service->stats();
  while (after.steals + after.local_hits <= before.steals + before.local_hits) {
    std::this_thread::yield();
    after = service->stats();
  }
  EXPECT_GT(after.steals + after.local_hits,
            before.steals + before.local_hits);
}

TEST(AsyncDeterminism, ParallelWorkforceMatrixBitMatchesSerial) {
  workload::Generator generator({}, 0xDE7E'0003ull);
  const auto profiles = generator.Profiles(300);
  const auto requests = generator.Requests(40, 5);

  const auto serial = core::WorkforceMatrix::Compute(
      requests, profiles, core::WorkforcePolicy::kMinimalWorkforce);
  Executor executor(4);
  const auto parallel = core::WorkforceMatrix::Compute(
      requests, profiles, core::WorkforcePolicy::kMinimalWorkforce, &executor,
      /*grain=*/17);

  ASSERT_EQ(serial.num_requests(), parallel.num_requests());
  ASSERT_EQ(serial.num_strategies(), parallel.num_strategies());
  for (size_t i = 0; i < serial.num_requests(); ++i) {
    for (size_t j = 0; j < serial.num_strategies(); ++j) {
      ASSERT_EQ(serial.At(i, j).feasible, parallel.At(i, j).feasible);
      ASSERT_EQ(serial.At(i, j).requirement, parallel.At(i, j).requirement);
    }
  }
}

}  // namespace
}  // namespace stratrec::api
