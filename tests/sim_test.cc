// Platform simulator tests: the discrete-event substrate (virtual clock,
// tie-breaking, per-actor PRNG streams), scenario lookup/scaling, and the
// golden determinism contract — the same (scenario, seed) reproduces the
// same event schedule, the same schedule digest, and byte-identical journal
// records across repeated runs and across worker-pool sizes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/codec.h"
#include "src/api/replay.h"
#include "src/workload/generators.h"
#include "src/common/journal.h"
#include "src/sim/engine.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"

namespace stratrec::sim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "stratrec_sim_" + name + ".journal";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Scenarios scaled down for unit-test budgets: same shapes as the full
// sweep, a fraction of the horizon and catalog.
ScenarioConfig SmallScenario(const std::string& name) {
  auto scenario = FindScenario(name);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  ScaleScenario(&*scenario, /*ticks=*/24.0, /*strategies=*/120);
  return *scenario;
}

// --- EventQueue -----------------------------------------------------------

TEST(EventQueue, FiresInTimeOrderWithStableTies) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(2.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(1.0, [&] { order.push_back(2); });  // same time: FIFO
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.fired(), 3u);
}

TEST(EventQueue, EventsScheduleFurtherEventsAndThePastClampsToNow) {
  EventQueue queue;
  std::vector<double> times;
  queue.Schedule(1.0, [&] {
    times.push_back(queue.now());
    queue.ScheduleAfter(0.5, [&] { times.push_back(queue.now()); });
    queue.Schedule(0.0, [&] { times.push_back(queue.now()); });  // the past
  });
  while (queue.RunNext()) {
  }
  // The past-scheduled event fires at now (1.0), before the +0.5 one.
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.0, 1.5}));
}

TEST(EventQueue, RunUntilStopsAtTheHorizonAndAdvancesTheClock) {
  EventQueue queue;
  int fired = 0;
  queue.Schedule(1.0, [&] { ++fired; });
  queue.Schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(queue.RunUntil(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.pending(), 1u);
}

// --- RngStreams / DeriveSeed ----------------------------------------------

TEST(RngStreams, SameActorSameStreamAndOrderOfFirstUseDoesNotMatter) {
  RngStreams a(42);
  RngStreams b(42);
  // a touches "x" first; b touches "y" first — the streams must not care.
  const uint64_t ax = a.For("x").Next();
  const uint64_t ay = a.For("y").Next();
  const uint64_t by = b.For("y").Next();
  const uint64_t bx = b.For("x").Next();
  EXPECT_EQ(ax, bx);
  EXPECT_EQ(ay, by);
  EXPECT_NE(ax, ay);  // distinct actors, uncorrelated streams
  EXPECT_NE(DeriveSeed(42, "x"), DeriveSeed(43, "x"));
  EXPECT_EQ(DeriveSeed(42, "x"), DeriveSeed(42, "x"));
}

TEST(ScheduleDigest, MixesOrderSensitivelyAndHexRoundTrips) {
  ScheduleDigest a;
  ScheduleDigest b;
  a.Mix("x");
  a.Mix(uint64_t{1});
  b.Mix(uint64_t{1});
  b.Mix("x");
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(ScheduleDigest::Hex(0).size(), 16u);
  EXPECT_EQ(ScheduleDigest::Hex(0xABCDEF), "0000000000abcdef");
}

// --- Scenarios ------------------------------------------------------------

TEST(Scenarios, BuiltinSetCoversTheSweepMatrix) {
  const auto names = ScenarioNames();
  EXPECT_GE(names.size(), 8u);
  for (const std::string& name : names) {
    auto scenario = FindScenario(name);
    ASSERT_TRUE(scenario.ok()) << name;
    EXPECT_EQ(scenario->name, name);
  }
  EXPECT_FALSE(FindScenario("no-such-scenario").ok());
  // The set exercises both modes and the storm/fault machinery.
  bool stream = false, batch = false, faults = false, storms = false;
  for (const ScenarioConfig& scenario : BuiltinScenarios()) {
    stream |= scenario.stream_mode;
    batch |= !scenario.stream_mode;
    faults |= scenario.faults.drop_probability > 0.0;
    storms |= scenario.storms.revocation_period > 0 ||
              scenario.storms.cancellation_period > 0;
  }
  EXPECT_TRUE(stream && batch && faults && storms);
}

TEST(Scenarios, ScaleRescalesFaultWindowsWithTheHorizon) {
  auto scenario = FindScenario("brownout");
  ASSERT_TRUE(scenario.ok());
  const double fraction =
      scenario->faults.slowdown_begin / scenario->ticks;
  ScaleScenario(&*scenario, 30.0, 100);
  EXPECT_EQ(scenario->ticks, 30.0);
  EXPECT_EQ(scenario->strategies, 100u);
  EXPECT_DOUBLE_EQ(scenario->faults.slowdown_begin, fraction * 30.0);
}

// --- The golden determinism contract --------------------------------------

// Same (scenario, seed) and pool: repeated runs must agree on the schedule
// digest, the event count, AND the exact journal bytes.
TEST(Simulator, RepeatedRunsAreByteIdentical) {
  for (const std::string& name : {"poisson", "bursty", "brownout"}) {
    const ScenarioConfig scenario = SmallScenario(name);
    RunOptions options;
    options.seed = 7;
    options.worker_threads = 2;
    // One path for both runs: the config record embeds the journal path, so
    // byte identity only makes sense when it matches. The writer truncates
    // at Service::Create, so the second run fully replaces the first.
    options.journal_path = TempPath(name);
    auto first = RunScenario(scenario, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const std::string first_bytes = ReadFileBytes(options.journal_path);
    auto second = RunScenario(scenario, options);
    ASSERT_TRUE(second.ok()) << second.status().ToString();

    EXPECT_EQ(first->schedule_digest, second->schedule_digest) << name;
    EXPECT_EQ(first->events_fired, second->events_fired) << name;
    EXPECT_EQ(first->batches_submitted, second->batches_submitted) << name;
    EXPECT_EQ(first_bytes, ReadFileBytes(options.journal_path))
        << name << ": journal bytes differ between identical runs";
    std::remove(options.journal_path.c_str());
  }
}

// Across pool sizes: the digest is always invariant; for deterministic
// scenarios the journal fingerprint (records minus config/stats lines) is
// too; and every journal replays byte-identically.
TEST(Simulator, PoolSizeNeverLeaksIntoTheSchedule) {
  for (const std::string& name : {"poisson", "churn"}) {
    const ScenarioConfig scenario = SmallScenario(name);
    uint64_t digest = 0;
    uint64_t fingerprint = 0;
    for (const size_t pool : {size_t{1}, size_t{2}, size_t{4}}) {
      RunOptions options;
      options.seed = 11;
      options.worker_threads = pool;
      options.journal_path = TempPath(name + "_pool");
      auto report = RunScenario(scenario, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      auto print = JournalFingerprint(options.journal_path);
      ASSERT_TRUE(print.ok()) << print.status().ToString();
      if (pool == 1) {
        digest = report->schedule_digest;
        fingerprint = *print;
      } else {
        EXPECT_EQ(report->schedule_digest, digest)
            << name << " at pool " << pool;
        ASSERT_TRUE(scenario.deterministic_journal);
        EXPECT_EQ(*print, fingerprint) << name << " at pool " << pool;
      }
      auto trace = wire::ReadTraceFile(options.journal_path);
      ASSERT_TRUE(trace.ok()) << trace.status().ToString();
      auto replayed = wire::ReplayTrace(*trace, {.worker_threads = pool});
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      EXPECT_TRUE(replayed->ok()) << name << ": " << replayed->mismatched.size()
                                  << " mismatched pairs at pool " << pool;
      std::remove(options.journal_path.c_str());
    }
  }
}

// The cancel-storm scenario races Ticket::Cancel against the pool on
// purpose: its journal bytes may vary, but the schedule digest must not,
// and the journal must still replay byte-identically (cancelled pairs are
// skipped as unreproducible work).
TEST(Simulator, CancelStormKeepsDigestInvariantAndReplaysCleanly) {
  ScenarioConfig scenario = SmallScenario("cancel-storm");
  ASSERT_FALSE(scenario.deterministic_journal);
  uint64_t digest = 0;
  size_t attempts = 0;
  for (const size_t pool : {size_t{1}, size_t{4}}) {
    RunOptions options;
    options.seed = 23;
    options.worker_threads = pool;
    options.journal_path = TempPath("cancel_storm");
    auto report = RunScenario(scenario, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->cancel_attempts, 0u);
    if (pool == 1) {
      digest = report->schedule_digest;
      attempts = report->cancel_attempts;
    } else {
      EXPECT_EQ(report->schedule_digest, digest);
      // The *attempts* are inputs (deterministic); the wins are the race.
      EXPECT_EQ(report->cancel_attempts, attempts);
    }
    auto trace = wire::ReadTraceFile(options.journal_path);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    auto replayed = wire::ReplayTrace(*trace, {.worker_threads = pool});
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_TRUE(replayed->ok());
    std::remove(options.journal_path.c_str());
  }
}

// Scenario behavior: the knobs actually do what they claim.
TEST(Simulator, ScenarioKnobsShapeTheRun) {
  // Brownout drops batches and stretches latencies inside its window.
  auto brownout = RunScenario(SmallScenario("brownout"),
                              {.seed = 3, .worker_threads = 2});
  ASSERT_TRUE(brownout.ok()) << brownout.status().ToString();
  EXPECT_GT(brownout->dropped_batches, 0u);
  EXPECT_GT(brownout->latency.max, 0.0);

  // Diurnal drift moves the availability; the quantum keeps changes finite.
  auto diurnal = RunScenario(SmallScenario("diurnal"),
                             {.seed = 3, .worker_threads = 2});
  ASSERT_TRUE(diurnal.ok()) << diurnal.status().ToString();
  EXPECT_GT(diurnal->availability_changes, 0u);

  // Churn joins and leaves workers; the stream session sees revocations
  // from the revocation-storm scenario.
  auto churn = RunScenario(SmallScenario("churn"),
                           {.seed = 3, .worker_threads = 2});
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  EXPECT_GT(churn->worker_joins + churn->worker_leaves, 0u);
  EXPECT_GT(churn->stream.arrivals, 0u);

  auto storm = RunScenario(SmallScenario("revocation-storm"),
                           {.seed = 3, .worker_threads = 2});
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();
  EXPECT_GT(storm->stream.revoked, 0u);

  // Multi-tenant runs drive one service per tenant (and journal each).
  ScenarioConfig multi = SmallScenario("multi-tenant");
  RunOptions options;
  options.seed = 3;
  options.worker_threads = 2;
  options.journal_path = TempPath("multi");
  auto tenants = RunScenario(multi, options);
  ASSERT_TRUE(tenants.ok()) << tenants.status().ToString();
  ASSERT_EQ(tenants->journals.size(), multi.tenants);
  for (const std::string& path : tenants->journals) {
    auto trace = wire::ReadTraceFile(path);
    EXPECT_TRUE(trace.ok()) << path << ": " << trace.status().ToString();
    std::remove(path.c_str());
  }
}

// The diurnal scenario writes virtual-time-stamped stats checkpoints
// (journal format v6): the recorded trace carries them in virtual-time
// order, and replay is unaffected by their presence.
TEST(Simulator, StatsSnapshotsCarryVirtualTime) {
  const ScenarioConfig scenario = SmallScenario("diurnal");
  ASSERT_GE(scenario.stats_snapshot_period, 1.0);
  RunOptions options;
  options.seed = 5;
  options.worker_threads = 2;
  options.journal_path = TempPath("diurnal_stats");
  auto report = RunScenario(scenario, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto trace = wire::ReadTraceFile(options.journal_path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_FALSE(trace->stats.empty());
  double previous = 0.0;
  for (const wire::StatsRecord& checkpoint : trace->stats) {
    EXPECT_TRUE(checkpoint.has_sim_time);
    EXPECT_GT(checkpoint.sim_time, previous);
    previous = checkpoint.sim_time;
    EXPECT_GT(checkpoint.stats.batches, 0u);
  }
  auto replayed = wire::ReplayTrace(*trace, {.worker_threads = 2});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->ok());
  std::remove(options.journal_path.c_str());
}

// RunOptions::catalog pins tenant 0 to a caller-supplied catalog (the
// example's AMT-fitted one); a different catalog must change outcomes but
// not the schedule digest (the digest hashes inputs, not outcomes).
TEST(Simulator, CallerSuppliedCatalogIsServed) {
  const ScenarioConfig scenario = SmallScenario("poisson");
  RunOptions with_default;
  with_default.seed = 9;
  with_default.worker_threads = 1;
  auto baseline = RunScenario(scenario, with_default);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  workload::Generator generator({}, 1234);
  RunOptions with_catalog = with_default;
  with_catalog.catalog =
      api::CatalogFromProfiles(generator.Profiles(40), "tiny-s");
  auto custom = RunScenario(scenario, with_catalog);
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();
  EXPECT_EQ(custom->schedule_digest, baseline->schedule_digest);
  EXPECT_EQ(custom->requests_submitted, baseline->requests_submitted);
}

}  // namespace
}  // namespace stratrec::sim
