// Tests for the literal Algorithm-2 reconstruction: validity on all inputs,
// agreement with the exact solver on the paper's own examples, and a
// measured optimality gap on random instances (the reproduction finding that
// the paper's "exact" claim does not hold for its written pseudocode).
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/adpar.h"
#include "src/core/adpar_paper_sweep.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

const std::vector<ParamVector> kTable1 = {
    {0.50, 0.25, 0.28},
    {0.75, 0.33, 0.28},
    {0.80, 0.50, 0.14},
    {0.88, 0.58, 0.14},
};

TEST(AdparPaperSweep, MatchesExactOnD1AndD3) {
  for (int k = 1; k <= 4; ++k) {
    for (const ParamVector& d :
         {ParamVector{0.4, 0.17, 0.28}, ParamVector{0.7, 0.83, 0.28}}) {
      auto sweep = AdparPaperSweep(kTable1, d, k);
      auto exact = AdparExact(kTable1, d, k);
      ASSERT_TRUE(sweep.ok());
      ASSERT_TRUE(exact.ok());
      EXPECT_NEAR(sweep->squared_distance, exact->squared_distance, 1e-9)
          << "k=" << k << " d=" << d.ToString();
    }
  }
}

TEST(AdparPaperSweep, ExhibitsTheCoupledCursorGapOnD2) {
  // Reproduction finding (see EXPERIMENTS.md): on the paper's own worked
  // example d2 with k = 3, the literal Algorithm 2 raises the quality
  // sweep-line to 0.3 before the cost line can reach 0.38, landing on
  // (0.5, 0.5, 0.28) with distance^2 = 0.3^2 + 0.3^2 = 0.18. The true
  // optimum (Equation 3) is (0.75, 0.58, 0.28) with 0.1469 — so the paper's
  // exactness claim (Theorem 4) does not hold for its written pseudocode.
  // (The paper's stated answer, 0.1114 at (0.75, 0.5, 0.28), covers only 2
  // strategies and is infeasible; see paper_example_test.cc.)
  const ParamVector d2{0.8, 0.2, 0.28};
  auto sweep = AdparPaperSweep(kTable1, d2, 3);
  auto exact = AdparExact(kTable1, d2, 3);
  ASSERT_TRUE(sweep.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(sweep->squared_distance, 0.18, 1e-9);
  EXPECT_NEAR(exact->squared_distance, 0.1469, 1e-9);
  EXPECT_GT(sweep->squared_distance, exact->squared_distance);
  // The sweep's answer is still a *valid* k = 3 alternative.
  int covered = 0;
  for (const auto& s : kTable1) {
    covered += Satisfies(s, sweep->alternative) ? 1 : 0;
  }
  EXPECT_GE(covered, 3);
}

TEST(AdparPaperSweep, InputValidation) {
  EXPECT_FALSE(AdparPaperSweep(kTable1, {0.5, 0.5, 0.5}, 0).ok());
  EXPECT_FALSE(AdparPaperSweep(kTable1, {0.5, 0.5, 0.5}, 5).ok());
  EXPECT_FALSE(AdparPaperSweep({}, {0.5, 0.5, 0.5}, 1).ok());
}

TEST(AdparPaperSweep, ZeroDistanceWhenSatisfiable) {
  auto result = AdparPaperSweep(kTable1, {0.7, 0.83, 0.28}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->squared_distance, 0.0, 1e-12);
}

class PaperSweepPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PaperSweepPropertyTest, AlwaysValidNeverBeatsExact) {
  const int num_strategies = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  workload::Generator generator({}, std::get<2>(GetParam()));
  const auto strategies = generator.StrategyParams(num_strategies);
  const auto requests = generator.Requests(8, k);
  for (const auto& request : requests) {
    auto sweep = AdparPaperSweep(strategies, request.thresholds, k);
    auto exact = AdparExact(strategies, request.thresholds, k);
    ASSERT_TRUE(sweep.ok());
    ASSERT_TRUE(exact.ok());
    // Valid: covers >= k.
    size_t covered = 0;
    for (const auto& s : strategies) {
      covered += Satisfies(s, sweep->alternative) ? 1 : 0;
    }
    EXPECT_GE(covered, static_cast<size_t>(k));
    // A heuristic: never better than the exact optimum.
    EXPECT_GE(sweep->squared_distance, exact->squared_distance - 1e-9);
    // And never catastrically worse than the coupled-cursor bound: the
    // initial per-axis levels (Lemma 1) already cover the exact optimum's
    // per-axis floor, so the sweep is at most a full-relaxation away.
    EXPECT_LE(sweep->distance, 1.7320508075688772 + 1e-9);  // sqrt(3)
  }
}

TEST_P(PaperSweepPropertyTest, GapIsBoundedOnAverage) {
  // Reproduction finding: the literal Algorithm 2 is near-optimal but not
  // exact. Measure the mean relative gap; assert it stays modest (< 25%)
  // so regressions in the reconstruction are caught.
  const int num_strategies = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  workload::Generator generator({}, std::get<2>(GetParam()) ^ 0xBEEF);
  const auto strategies = generator.StrategyParams(num_strategies);
  const auto requests = generator.Requests(10, k);
  double total_gap = 0.0;
  int counted = 0;
  for (const auto& request : requests) {
    auto sweep = AdparPaperSweep(strategies, request.thresholds, k);
    auto exact = AdparExact(strategies, request.thresholds, k);
    ASSERT_TRUE(sweep.ok());
    ASSERT_TRUE(exact.ok());
    if (exact->distance < 1e-12) continue;  // satisfiable: both zero
    total_gap += (sweep->distance - exact->distance) / exact->distance;
    ++counted;
  }
  if (counted > 0) {
    EXPECT_LT(total_gap / counted, 0.25);
    EXPECT_GE(total_gap / counted, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, PaperSweepPropertyTest,
    testing::Combine(testing::Values(10, 25, 60), testing::Values(1, 4, 8),
                     testing::Values(0xA1u, 0xA2u, 0xA3u)));

}  // namespace
}  // namespace stratrec::core
