// Wire codec tests: decode(encode(x)) == x property over randomized
// envelopes (all three request kinds plus reports, specs, config, catalog,
// status), byte-stable re-encoding, stable field names, and strict decode
// errors. Randomness rides the repo Rng, so every failure reproduces from
// the seed.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "src/api/codec.h"
#include "src/common/rng.h"

namespace stratrec::wire {
namespace {

// ---------------------------------------------------------------------------
// Random envelope generators. Values stay NaN-free (the parameter space is
// finite by construction); strings exercise escaping.
// ---------------------------------------------------------------------------

std::string RandomString(Rng& rng, size_t max_len = 10) {
  static constexpr char kAlphabet[] =
      "abcXYZ019 _-/\\\"\n\t{}:,[]\x01";
  const size_t len = static_cast<size_t>(rng.UniformInt(0, max_len));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(
        kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)]);
  }
  return out;
}

double RandomDouble(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return 0.0;
    case 1:
      return 1.0;
    case 2:
      return 1.0 / 3.0;  // no finite decimal expansion
    case 3:
      return rng.Uniform() * 1e-12;  // tiny magnitudes
    default:
      return rng.Uniform();
  }
}

core::ParamVector RandomParams(Rng& rng) {
  return {RandomDouble(rng), RandomDouble(rng), RandomDouble(rng)};
}

core::DeploymentRequest RandomRequest(Rng& rng) {
  core::DeploymentRequest request;
  request.id = RandomString(rng);
  request.thresholds = RandomParams(rng);
  request.k = static_cast<int>(rng.UniformInt(1, 5));
  return request;
}

std::vector<size_t> RandomIndices(Rng& rng) {
  std::vector<size_t> out(static_cast<size_t>(rng.UniformInt(0, 4)));
  for (size_t& v : out) v = static_cast<size_t>(rng.UniformInt(0, 1000));
  return out;
}

api::AvailabilitySpec RandomSpec(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return api::AvailabilitySpec::Default();
    case 1:
      return api::AvailabilitySpec::Fixed(RandomDouble(rng));
    case 2: {
      std::vector<stats::PmfAtom> atoms(
          static_cast<size_t>(rng.UniformInt(0, 3)));
      for (stats::PmfAtom& atom : atoms) {
        atom = {RandomDouble(rng), RandomDouble(rng)};
      }
      return api::AvailabilitySpec::FromPmf(std::move(atoms));
    }
    case 3: {
      std::vector<double> samples(static_cast<size_t>(rng.UniformInt(0, 3)));
      for (double& s : samples) s = RandomDouble(rng);
      return api::AvailabilitySpec::FromSamples(std::move(samples));
    }
    default:
      return api::AvailabilitySpec::Named(RandomString(rng));
  }
}

Status RandomStatus(Rng& rng) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,        StatusCode::kInvalidArgument,
      StatusCode::kNotFound,  StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kInfeasible,
      StatusCode::kCancelled, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
  };
  const StatusCode code = kCodes[rng.UniformInt(0, 8)];
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, RandomString(rng));
}

api::BatchRequest RandomBatchRequest(Rng& rng) {
  api::BatchRequest request;
  request.requests.resize(static_cast<size_t>(rng.UniformInt(0, 4)));
  for (core::DeploymentRequest& r : request.requests) r = RandomRequest(rng);
  request.availability = RandomSpec(rng);
  if (rng.Bernoulli(0.5)) request.algorithm = RandomString(rng);
  if (rng.Bernoulli(0.5)) {
    request.objective = rng.Bernoulli(0.5) ? core::Objective::kThroughput
                                           : core::Objective::kPayoff;
  }
  if (rng.Bernoulli(0.5)) {
    request.aggregation = rng.Bernoulli(0.5) ? core::AggregationMode::kSum
                                             : core::AggregationMode::kMax;
  }
  if (rng.Bernoulli(0.5)) {
    request.policy = rng.Bernoulli(0.5)
                         ? core::WorkforcePolicy::kMinimalWorkforce
                         : core::WorkforcePolicy::kPaperMaxOfThree;
  }
  if (rng.Bernoulli(0.5)) request.recommend_alternatives = rng.Bernoulli(0.5);
  if (rng.Bernoulli(0.5)) request.adpar_solver = RandomString(rng);
  if (rng.Bernoulli(0.5)) request.request_id = RandomString(rng);
  if (rng.Bernoulli(0.5)) request.deadline_ms = 1.0 + 1000.0 * rng.Uniform();
  return request;
}

core::AdparResult RandomAdparResult(Rng& rng) {
  core::AdparResult result;
  result.alternative = RandomParams(rng);
  result.strategies = RandomIndices(rng);
  result.squared_distance = RandomDouble(rng);
  result.distance = RandomDouble(rng);
  return result;
}

api::BatchReport RandomBatchReport(Rng& rng) {
  api::BatchReport report;
  report.request_id = RandomString(rng);
  report.algorithm = RandomString(rng);
  report.availability = RandomDouble(rng);
  report.result.aggregator.availability = RandomDouble(rng);
  report.result.aggregator.strategy_params.resize(
      static_cast<size_t>(rng.UniformInt(0, 3)));
  for (core::ParamVector& p : report.result.aggregator.strategy_params) {
    p = RandomParams(rng);
  }
  core::BatchResult& batch = report.result.aggregator.batch;
  batch.outcomes.resize(static_cast<size_t>(rng.UniformInt(0, 3)));
  for (core::RequestOutcome& outcome : batch.outcomes) {
    outcome.request_index = static_cast<size_t>(rng.UniformInt(0, 99));
    outcome.satisfied = rng.Bernoulli(0.5);
    outcome.eligible = rng.Bernoulli(0.5);
    outcome.workforce = RandomDouble(rng);
    outcome.objective_value = RandomDouble(rng);
    outcome.strategies = RandomIndices(rng);
  }
  batch.total_objective = RandomDouble(rng);
  batch.workforce_used = RandomDouble(rng);
  batch.satisfied = RandomIndices(rng);
  batch.unsatisfied = RandomIndices(rng);
  report.result.alternatives.resize(
      static_cast<size_t>(rng.UniformInt(0, 2)));
  for (core::AlternativeRecommendation& alt : report.result.alternatives) {
    alt.request_index = static_cast<size_t>(rng.UniformInt(0, 99));
    alt.result = RandomAdparResult(rng);
  }
  report.result.adpar_failures = RandomIndices(rng);
  return report;
}

api::SweepRequest RandomSweepRequest(Rng& rng) {
  api::SweepRequest request;
  request.targets.resize(static_cast<size_t>(rng.UniformInt(0, 4)));
  for (core::DeploymentRequest& target : request.targets) {
    target = RandomRequest(rng);
  }
  request.solvers.resize(static_cast<size_t>(rng.UniformInt(0, 3)));
  for (std::string& solver : request.solvers) solver = RandomString(rng);
  request.availability = RandomSpec(rng);
  if (rng.Bernoulli(0.5)) request.request_id = RandomString(rng);
  if (rng.Bernoulli(0.5)) request.deadline_ms = 1.0 + 1000.0 * rng.Uniform();
  return request;
}

api::SweepReport RandomSweepReport(Rng& rng) {
  api::SweepReport report;
  report.request_id = RandomString(rng);
  report.availability = RandomDouble(rng);
  report.strategy_params.resize(static_cast<size_t>(rng.UniformInt(0, 3)));
  for (core::ParamVector& p : report.strategy_params) p = RandomParams(rng);
  report.outcomes.resize(static_cast<size_t>(rng.UniformInt(0, 4)));
  for (api::SweepOutcome& outcome : report.outcomes) {
    outcome.target_id = RandomString(rng);
    outcome.solver = RandomString(rng);
    outcome.status = RandomStatus(rng);
    // The codec only carries a result for OK cells; error cells round-trip
    // as default-constructed.
    if (outcome.status.ok()) outcome.result = RandomAdparResult(rng);
  }
  return report;
}

api::StreamOptions RandomStreamOptions(Rng& rng) {
  api::StreamOptions options;
  options.availability = RandomSpec(rng);
  if (rng.Bernoulli(0.5)) {
    options.max_pending = static_cast<size_t>(rng.UniformInt(0, 128));
  }
  if (rng.Bernoulli(0.5)) options.readmit_on_release = rng.Bernoulli(0.5);
  if (rng.Bernoulli(0.5)) {
    options.objective = rng.Bernoulli(0.5) ? core::Objective::kThroughput
                                           : core::Objective::kPayoff;
  }
  if (rng.Bernoulli(0.5)) options.recommend_alternatives = rng.Bernoulli(0.5);
  if (rng.Bernoulli(0.5)) options.deadline_ms = 1.0 + 1000.0 * rng.Uniform();
  if (rng.Bernoulli(0.5)) options.session_id = RandomString(rng);
  return options;
}

core::AdmissionDecision RandomAdmissionDecision(Rng& rng) {
  core::AdmissionDecision decision;
  switch (rng.UniformInt(0, 2)) {
    case 0:
      decision.kind = core::AdmissionDecision::Kind::kAdmitted;
      break;
    case 1:
      decision.kind = core::AdmissionDecision::Kind::kQueued;
      break;
    default:
      decision.kind = core::AdmissionDecision::Kind::kRejected;
      break;
  }
  decision.strategies = RandomIndices(rng);
  decision.workforce = RandomDouble(rng);
  return decision;
}

api::StreamUpdate RandomStreamUpdate(Rng& rng) {
  api::StreamUpdate update;
  update.session_id = RandomString(rng);
  switch (rng.UniformInt(0, 3)) {
    case 0:
      update.kind = api::StreamEvent::Kind::kArrival;
      break;
    case 1:
      update.kind = api::StreamEvent::Kind::kRevocation;
      break;
    case 2:
      update.kind = api::StreamEvent::Kind::kCompletion;
      break;
    default:
      update.kind = api::StreamEvent::Kind::kAvailabilityChange;
      break;
  }
  update.request_id = RandomString(rng);
  update.decision = RandomAdmissionDecision(rng);
  if (rng.Bernoulli(0.5)) {
    update.has_alternative = true;
    update.alternative = RandomAdparResult(rng);
  }
  update.availability = RandomDouble(rng);
  update.used_workforce = RandomDouble(rng);
  update.active = static_cast<size_t>(rng.UniformInt(0, 1000));
  update.pending = static_cast<size_t>(rng.UniformInt(0, 1000));
  return update;
}

api::StreamEvent RandomStreamEvent(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return api::StreamEvent::Arrival(RandomRequest(rng));
    case 1:
      return api::StreamEvent::Revocation(RandomString(rng));
    case 2:
      return api::StreamEvent::Completion(RandomString(rng));
    default:
      return api::StreamEvent::AvailabilityChange(RandomSpec(rng));
  }
}

api::ServiceConfig RandomConfig(Rng& rng) {
  api::ServiceConfig config;
  config.batch.algorithm = RandomString(rng);
  config.batch.objective = rng.Bernoulli(0.5) ? core::Objective::kThroughput
                                              : core::Objective::kPayoff;
  config.batch.aggregation = rng.Bernoulli(0.5) ? core::AggregationMode::kSum
                                                : core::AggregationMode::kMax;
  config.batch.policy = rng.Bernoulli(0.5)
                            ? core::WorkforcePolicy::kMinimalWorkforce
                            : core::WorkforcePolicy::kPaperMaxOfThree;
  config.batch.recommend_alternatives = rng.Bernoulli(0.5);
  config.batch.adpar_solver = RandomString(rng);
  config.stream.max_pending = static_cast<size_t>(rng.UniformInt(0, 1000));
  config.stream.readmit_on_release = rng.Bernoulli(0.5);
  config.stream.recommend_alternatives = rng.Bernoulli(0.5);
  config.execution.worker_threads = static_cast<size_t>(rng.UniformInt(0, 64));
  config.execution.parallel_grain =
      static_cast<size_t>(rng.UniformInt(1, 10000));
  config.cache.snapshot_capacity =
      static_cast<size_t>(rng.UniformInt(0, 128));
  config.cache.shards = static_cast<size_t>(rng.UniformInt(1, 16));
  config.cache.availability_quantum =
      rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.0, 1.0);
  config.journal.path = RandomString(rng);
  config.journal.record_cancelled = rng.Bernoulli(0.5);
  config.journal.flush_every_record = rng.Bernoulli(0.5);
  config.journal.max_segment_bytes =
      rng.Bernoulli(0.5) ? 0 : static_cast<size_t>(rng.UniformInt(1, 1 << 20));
  config.journal.compact_after_segments =
      static_cast<size_t>(rng.UniformInt(0, 64));
  config.journal.retain_segments = static_cast<size_t>(rng.UniformInt(0, 8));
  config.availability = RandomSpec(rng);
  return config;
}

api::ServiceStats RandomServiceStats(Rng& rng) {
  api::ServiceStats stats;
  stats.batches = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.sweeps = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.streams_opened = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.stream_events = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.stream_reschedules = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.snapshot_delta_updates =
      static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.snapshot_rebuilds = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.requests_processed = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.cancelled = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.queue_depth = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.active_workers = static_cast<size_t>(rng.UniformInt(0, 64));
  stats.steals = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.local_hits = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.cache_hits = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.cache_misses = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.index_build_nanos = static_cast<size_t>(rng.UniformInt(0, 1 << 30));
  stats.rejected_requests = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.retry_after_hints = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.deadline_exceeded = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.retries = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.failovers = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.hedges_won = static_cast<size_t>(rng.UniformInt(0, 100000));
  stats.kernel_dispatch = rng.Bernoulli(0.5) ? "avx2" : "scalar";
  return stats;
}

core::Catalog RandomCatalog(Rng& rng) {
  core::Catalog catalog;
  const size_t n = static_cast<size_t>(rng.UniformInt(0, 5));
  const std::vector<core::StageSpec> specs = core::AllStageSpecs();
  for (size_t j = 0; j < n; ++j) {
    std::vector<core::StageSpec> stages(
        static_cast<size_t>(rng.UniformInt(1, 3)));
    for (core::StageSpec& stage : stages) {
      stage = specs[rng.UniformInt(0, specs.size() - 1)];
    }
    catalog.strategies.emplace_back("s" + std::to_string(j),
                                    std::move(stages));
    core::StrategyProfile profile;
    profile.quality = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    profile.cost = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    profile.latency = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    catalog.profiles.push_back(profile);
  }
  return catalog;
}

/// decode(encode(x)) == x, and re-encoding the decoded value is
/// byte-identical (the stability the replay bit-match relies on).
template <typename T, typename DecodeFn>
void ExpectRoundTrip(const T& value, DecodeFn decode, const char* what) {
  const std::string encoded = json::Dump(Encode(value));
  auto parsed = json::Parse(encoded);
  ASSERT_TRUE(parsed.ok()) << what << ": " << parsed.status().ToString()
                           << "\n" << encoded;
  auto decoded = decode(*parsed);
  ASSERT_TRUE(decoded.ok()) << what << ": " << decoded.status().ToString()
                            << "\n" << encoded;
  EXPECT_TRUE(value == *decoded) << what << " round-trip changed the value\n"
                                 << encoded;
  EXPECT_EQ(json::Dump(Encode(*decoded)), encoded)
      << what << " re-encoding is not byte-stable";
}

constexpr int kIterations = 300;

TEST(CodecProperty, BatchRequestRoundTrips) {
  Rng rng(0xC0DEC'0001ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomBatchRequest(rng), DecodeBatchRequest,
                    "BatchRequest");
  }
}

TEST(CodecProperty, SweepRequestRoundTrips) {
  Rng rng(0xC0DEC'0002ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomSweepRequest(rng), DecodeSweepRequest,
                    "SweepRequest");
  }
}

TEST(CodecProperty, StreamEnvelopesRoundTrip) {
  Rng rng(0xC0DEC'0003ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomStreamOptions(rng), DecodeStreamOptions,
                    "StreamOptions");
    ExpectRoundTrip(RandomStreamEvent(rng), DecodeStreamEvent, "StreamEvent");
    ExpectRoundTrip(RandomStreamUpdate(rng), DecodeStreamUpdate,
                    "StreamUpdate");
  }
}

TEST(CodecProperty, ReportsRoundTrip) {
  Rng rng(0xC0DEC'0004ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomBatchReport(rng), DecodeBatchReport, "BatchReport");
    ExpectRoundTrip(RandomSweepReport(rng), DecodeSweepReport, "SweepReport");
  }
}

TEST(CodecProperty, ConfigCatalogAndSpecRoundTrip) {
  Rng rng(0xC0DEC'0005ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomConfig(rng), DecodeServiceConfig, "ServiceConfig");
    ExpectRoundTrip(RandomCatalog(rng), DecodeCatalog, "Catalog");
    ExpectRoundTrip(RandomSpec(rng), DecodeAvailabilitySpec,
                    "AvailabilitySpec");
  }
}

TEST(CodecProperty, ServiceStatsRoundTrip) {
  Rng rng(0xC0DEC'0008ull);
  for (int i = 0; i < kIterations; ++i) {
    ExpectRoundTrip(RandomServiceStats(rng), DecodeServiceStats,
                    "ServiceStats");
  }
}

TEST(CodecProperty, StatusRoundTrips) {
  Rng rng(0xC0DEC'0006ull);
  for (int i = 0; i < kIterations; ++i) {
    const Status status = RandomStatus(rng);
    auto parsed = json::Parse(json::Dump(Encode(status)));
    ASSERT_TRUE(parsed.ok());
    Status decoded;
    ASSERT_TRUE(DecodeStatus(*parsed, &decoded).ok());
    EXPECT_TRUE(status == decoded);
  }
}

// ---------------------------------------------------------------------------
// Format stability and strictness.
// ---------------------------------------------------------------------------

TEST(Codec, FieldNamesAreStable) {
  core::DeploymentRequest request{"d1", {0.5, 0.25, 0.75}, 2};
  EXPECT_EQ(json::Dump(Encode(request)),
            "{\"id\":\"d1\",\"thresholds\":{\"quality\":0.5,\"cost\":0.25,"
            "\"latency\":0.75},\"k\":2}");

  EXPECT_EQ(json::Dump(Encode(api::AvailabilitySpec::Fixed(0.5))),
            "{\"kind\":\"fixed\",\"value\":0.5}");
  EXPECT_EQ(json::Dump(Encode(Status::Infeasible("k > |S|"))),
            "{\"code\":\"Infeasible\",\"message\":\"k > |S|\"}");
  EXPECT_EQ(json::Dump(Encode(Status::DeadlineExceeded("too slow"))),
            "{\"code\":\"DeadlineExceeded\",\"message\":\"too slow\"}");

  // The stats block the journal checkpoints ride on. Renaming a field here
  // silently breaks every recorded trace — update the format version too.
  api::ServiceStats stats;
  stats.batches = 1;
  stats.sweeps = 2;
  stats.streams_opened = 3;
  stats.stream_events = 4;
  stats.stream_reschedules = 16;
  stats.snapshot_delta_updates = 17;
  stats.snapshot_rebuilds = 18;
  stats.requests_processed = 5;
  stats.cancelled = 6;
  stats.queue_depth = 7;
  stats.active_workers = 8;
  stats.steals = 9;
  stats.local_hits = 10;
  stats.cache_hits = 11;
  stats.cache_misses = 12;
  stats.index_build_nanos = 13;
  stats.rejected_requests = 14;
  stats.retry_after_hints = 15;
  stats.deadline_exceeded = 19;
  stats.retries = 20;
  stats.failovers = 21;
  stats.hedges_won = 22;
  stats.kernel_dispatch = "avx2";
  EXPECT_EQ(json::Dump(Encode(stats)),
            "{\"batches\":1,\"sweeps\":2,\"streams_opened\":3,"
            "\"stream_events\":4,\"stream_reschedules\":16,"
            "\"snapshot_delta_updates\":17,\"snapshot_rebuilds\":18,"
            "\"requests_processed\":5,\"cancelled\":6,"
            "\"queue_depth\":7,\"active_workers\":8,\"steals\":9,"
            "\"local_hits\":10,\"cache_hits\":11,\"cache_misses\":12,"
            "\"index_build_nanos\":13,\"rejected_requests\":14,"
            "\"retry_after_hints\":15,\"deadline_exceeded\":19,"
            "\"retries\":20,\"failovers\":21,\"hedges_won\":22,"
            "\"kernel_dispatch\":\"avx2\"}");
}

// v6 journals predate the fault-tolerance counters: a stats block without
// them must still decode, defaulting the new fields to zero.
TEST(Codec, V6StatsWithoutFaultCountersStillDecode) {
  const std::string v6 =
      "{\"batches\":1,\"sweeps\":2,\"streams_opened\":3,"
      "\"stream_events\":4,\"stream_reschedules\":16,"
      "\"snapshot_delta_updates\":17,\"snapshot_rebuilds\":18,"
      "\"requests_processed\":5,\"cancelled\":6,"
      "\"queue_depth\":7,\"active_workers\":8,\"steals\":9,"
      "\"local_hits\":10,\"cache_hits\":11,\"cache_misses\":12,"
      "\"index_build_nanos\":13,\"rejected_requests\":14,"
      "\"retry_after_hints\":15,\"kernel_dispatch\":\"avx2\"}";
  auto decoded = DecodeServiceStats(*json::Parse(v6));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->batches, 1u);
  EXPECT_EQ(decoded->retry_after_hints, 15u);
  EXPECT_EQ(decoded->deadline_exceeded, 0u);
  EXPECT_EQ(decoded->retries, 0u);
  EXPECT_EQ(decoded->failovers, 0u);
  EXPECT_EQ(decoded->hedges_won, 0u);
}

// deadline_ms is emitted only when set: a request without a deadline must
// encode byte-identically to its pre-v7 form, and a set deadline must
// round-trip on all three envelope kinds.
TEST(Codec, DeadlineMsIsOmittedWhenUnsetAndRoundTripsWhenSet) {
  api::BatchRequest batch;
  batch.availability = api::AvailabilitySpec::Fixed(0.5);
  EXPECT_EQ(json::Dump(Encode(batch)).find("deadline_ms"), std::string::npos);
  batch.deadline_ms = 250.0;
  const std::string encoded = json::Dump(Encode(batch));
  EXPECT_NE(encoded.find("\"deadline_ms\":250"), std::string::npos) << encoded;
  auto decoded = DecodeBatchRequest(*json::Parse(encoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline_ms, 250.0);

  api::SweepRequest sweep;
  sweep.availability = api::AvailabilitySpec::Fixed(0.5);
  EXPECT_EQ(json::Dump(Encode(sweep)).find("deadline_ms"), std::string::npos);
  sweep.deadline_ms = 80.5;
  auto sweep_decoded =
      DecodeSweepRequest(*json::Parse(json::Dump(Encode(sweep))));
  ASSERT_TRUE(sweep_decoded.ok());
  EXPECT_EQ(sweep_decoded->deadline_ms, 80.5);

  api::StreamOptions options;
  EXPECT_EQ(json::Dump(Encode(options)).find("deadline_ms"),
            std::string::npos);
  options.deadline_ms = 12.25;
  auto options_decoded =
      DecodeStreamOptions(*json::Parse(json::Dump(Encode(options))));
  ASSERT_TRUE(options_decoded.ok());
  EXPECT_EQ(options_decoded->deadline_ms, 12.25);
}

TEST(Codec, StatsRecordDecodesIntoTheTrace) {
  api::ServiceStats stats;
  stats.batches = 3;
  stats.queue_depth = 12;
  stats.active_workers = 4;
  stats.steals = 17;
  stats.local_hits = 23;
  const std::string record = EncodeStatsRecord(stats);
  EXPECT_EQ(record.rfind("{\"kind\":\"stats\",\"stats\":", 0), 0u) << record;
  // A stats checkpoint decodes next to the pairs without disturbing them.
  auto trace = DecodeTrace({record, record});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->pairs.empty());
  ASSERT_EQ(trace->stats.size(), 2u);
  EXPECT_TRUE(trace->stats[0].stats == stats);
  EXPECT_FALSE(trace->stats[0].has_sim_time);
  EXPECT_TRUE(trace->stats[1].stats == stats);
  // Encoding is byte-deterministic: two identical snapshots, two identical
  // record lines.
  EXPECT_EQ(EncodeStatsRecord(stats), record);

  // The v6 virtual-time-stamped variant round-trips the stamp.
  const std::string stamped = EncodeStatsRecord(stats, 42.5);
  EXPECT_EQ(stamped.rfind("{\"kind\":\"stats\",\"sim_time\":", 0), 0u)
      << stamped;
  auto stamped_trace = DecodeTrace({stamped});
  ASSERT_TRUE(stamped_trace.ok()) << stamped_trace.status().ToString();
  ASSERT_EQ(stamped_trace->stats.size(), 1u);
  EXPECT_TRUE(stamped_trace->stats[0].has_sim_time);
  EXPECT_EQ(stamped_trace->stats[0].sim_time, 42.5);
  EXPECT_TRUE(stamped_trace->stats[0].stats == stats);
}

TEST(Codec, StreamRecordsDecodeIntoTheTrace) {
  Rng rng(0xC0DEC'0007ull);
  StreamOpenRecord open;
  open.session_id = "stream-000001";
  open.options = RandomStreamOptions(rng);
  open.availability = 0.625;

  StreamEventRecord succeeded;
  succeeded.session_id = open.session_id;
  succeeded.seq = 0;
  succeeded.event = api::StreamEvent::Arrival(RandomRequest(rng));
  succeeded.update = RandomStreamUpdate(rng);

  StreamEventRecord failed;
  failed.session_id = open.session_id;
  failed.seq = 1;
  failed.event = api::StreamEvent::Revocation("ghost");
  failed.status = Status::NotFound("unknown request id: ghost");

  const std::string open_line = EncodeStreamOpenRecord(open);
  EXPECT_EQ(open_line.rfind("{\"kind\":\"stream-open\",", 0), 0u)
      << open_line;
  const std::string ok_line = EncodeStreamEventRecord(succeeded);
  EXPECT_EQ(ok_line.rfind("{\"kind\":\"stream-event\",", 0), 0u) << ok_line;
  const std::string failed_line = EncodeStreamEventRecord(failed);

  auto trace = DecodeTrace({open_line, ok_line, failed_line});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->stream_opens.size(), 1u);
  EXPECT_TRUE(trace->stream_opens[0] == open);
  ASSERT_EQ(trace->stream_events.size(), 2u);
  EXPECT_TRUE(trace->stream_events[0] == succeeded);
  EXPECT_TRUE(trace->stream_events[1] == failed);
  // Byte-determinism is what replay's bit-match stands on.
  EXPECT_EQ(EncodeStreamOpenRecord(trace->stream_opens[0]), open_line);
  EXPECT_EQ(EncodeStreamEventRecord(trace->stream_events[0]), ok_line);
  EXPECT_EQ(EncodeStreamEventRecord(trace->stream_events[1]), failed_line);
}

TEST(Codec, CompactRecordsKeepsTheSelfContainedCore) {
  Rng rng(0xC0DEC'0009ull);
  const std::string config_a = EncodeConfigRecord(RandomConfig(rng));
  const std::string config_b = EncodeConfigRecord(RandomConfig(rng));
  const std::string catalog = EncodeCatalogRecord(RandomCatalog(rng));
  const std::string stats_a = EncodeStatsRecord(RandomServiceStats(rng));
  const std::string stats_b = EncodeStatsRecord(RandomServiceStats(rng));
  api::BatchRequest batch_request = RandomBatchRequest(rng);
  const std::string pair =
      EncodeBatchRecord("b1", batch_request, RandomBatchReport(rng));
  StreamOpenRecord open;
  open.session_id = "stream-000001";
  open.availability = 0.5;
  const std::string open_line = EncodeStreamOpenRecord(open);
  StreamEventRecord event;
  event.session_id = open.session_id;
  event.event = api::StreamEvent::Completion("d1");
  event.update = RandomStreamUpdate(rng);
  const std::string event_line = EncodeStreamEventRecord(event);
  const std::string unknown = "{\"kind\":\"future-record\",\"x\":1}";

  const auto folded = CompactRecords({config_a, stats_a, pair, open_line,
                                      unknown, event_line, config_b, catalog,
                                      stats_b});
  // Last config/catalog/stats survive; opens and unknown records survive in
  // order; the pair and the stream event are dropped.
  ASSERT_EQ(folded.size(), 5u);
  EXPECT_EQ(folded[0], config_b);
  EXPECT_EQ(folded[1], catalog);
  EXPECT_EQ(folded[2], open_line);
  EXPECT_EQ(folded[3], unknown);
  EXPECT_EQ(folded[4], stats_b);

  // Folding is idempotent: re-compacting the survivors changes nothing.
  EXPECT_EQ(CompactRecords(folded), folded);
}

TEST(Codec, OptionalFieldsAreOmittedAndRestoredUnset) {
  api::BatchRequest request;
  request.availability = api::AvailabilitySpec::Fixed(0.5);
  const std::string encoded = json::Dump(Encode(request));
  EXPECT_EQ(encoded.find("algorithm"), std::string::npos);
  EXPECT_EQ(encoded.find("request_id"), std::string::npos);
  auto decoded = DecodeBatchRequest(*json::Parse(encoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->algorithm.has_value());
  EXPECT_TRUE(decoded->request_id.empty());
}

TEST(Codec, DecodeRejectsMalformedEnvelopes) {
  const auto decode = [](const std::string& text) {
    auto parsed = json::Parse(text);
    EXPECT_TRUE(parsed.ok()) << text;
    return DecodeBatchRequest(*parsed);
  };
  // Missing required fields.
  EXPECT_EQ(decode("{}").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decode("{\"requests\":[]}").status().code(),
            StatusCode::kInvalidArgument);
  // Wrong types.
  EXPECT_EQ(decode("{\"requests\":7,\"availability\":{\"kind\":\"default\"}}")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Unknown enum names.
  EXPECT_EQ(decode("{\"requests\":[],\"availability\":{\"kind\":\"default\"},"
                   "\"objective\":\"profit\"}")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Codec, JsonParserIsStrict) {
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::Parse("[1 2]").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("nan").ok());
  EXPECT_FALSE(json::Parse("1e999").ok());  // overflows to infinity
  EXPECT_TRUE(json::Parse(" { \"a\" : [ 1 , true , null ] } ").ok());
}

TEST(Codec, NumbersRoundTripBitExactly) {
  Rng rng(0xC0DEC'0007ull);
  for (int i = 0; i < 1000; ++i) {
    const double value =
        (rng.Uniform() - 0.5) * std::pow(10.0, rng.UniformInt(-300, 300));
    auto parsed = json::Parse(json::FormatNumber(value));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->AsNumber(), value);
  }
  EXPECT_EQ(json::Parse(json::FormatNumber(1.0 / 3.0))->AsNumber(), 1.0 / 3.0);
  EXPECT_EQ(json::FormatNumber(0.5), "0.5");
  EXPECT_EQ(json::FormatNumber(1.0), "1");
}

TEST(Codec, NonFiniteNumbersDumpAsNullNotInvalidJson) {
  // JSON has no NaN literal; a non-finite double must not corrupt the
  // document (one bad value used to make a whole journal unparseable).
  EXPECT_EQ(json::FormatNumber(std::nan("")), "null");
  EXPECT_EQ(json::FormatNumber(1.0 / 0.0), "null");
  json::Value obj = json::Value::Object();
  obj.Add("x", std::nan(""));
  auto reparsed = json::Parse(json::Dump(obj));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->Find("x")->is_null());
  // The loss surfaces as a clean field-level decode error.
  core::ParamVector params{std::nan(""), 0.5, 0.5};
  EXPECT_EQ(DecodeParamVector(*json::Parse(json::Dump(Encode(params))))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Codec, IntegerDecodeRejectsOutOfRangeValues) {
  // Casting an unrepresentable double to int/size_t is UB; a corrupt or
  // hand-edited journal must fail cleanly instead.
  auto request = DecodeDeploymentRequest(*json::Parse(
      "{\"id\":\"d\",\"thresholds\":{\"quality\":0,\"cost\":0,"
      "\"latency\":0},\"k\":1e300}"));
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  auto result = DecodeAdparResult(*json::Parse(
      "{\"alternative\":{\"quality\":0,\"cost\":0,\"latency\":0},"
      "\"strategies\":[1e300],\"squared_distance\":0,\"distance\":0}"));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace stratrec::wire
