// Tests for the presence-trace analysis and bootstrap intervals.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/platform/trace.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"

namespace stratrec {
namespace {

using platform::PresenceInterval;
using platform::PresenceTrace;

TEST(PresenceTrace, Validation) {
  EXPECT_FALSE(PresenceTrace::Create({}, 0.0).ok());
  EXPECT_FALSE(
      PresenceTrace::Create({{1, -1.0, 2.0}}, 72.0).ok());  // negative start
  EXPECT_FALSE(
      PresenceTrace::Create({{1, 1.0, 100.0}}, 72.0).ok());  // beyond window
  EXPECT_FALSE(PresenceTrace::Create({{1, 5.0, 2.0}}, 72.0).ok());  // inverted
  EXPECT_TRUE(PresenceTrace::Create({}, 72.0).ok());  // empty trace is fine
}

TEST(PresenceTrace, ConcurrencyProfileStepFunction) {
  auto trace = PresenceTrace::Create(
      {{1, 0.0, 4.0}, {2, 2.0, 6.0}, {3, 5.0, 8.0}}, 10.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->ConcurrencyAt(1.0), 1);
  EXPECT_EQ(trace->ConcurrencyAt(3.0), 2);
  EXPECT_EQ(trace->ConcurrencyAt(4.5), 1);
  EXPECT_EQ(trace->ConcurrencyAt(5.5), 2);
  EXPECT_EQ(trace->ConcurrencyAt(9.0), 0);
  EXPECT_EQ(trace->PeakConcurrency(), 2);
  EXPECT_NEAR(trace->WorkerHours(), 4.0 + 4.0 + 3.0, 1e-12);
  EXPECT_NEAR(trace->AverageConcurrency(), 1.1, 1e-12);

  const auto profile = trace->ConcurrencyProfile();
  ASSERT_FALSE(profile.empty());
  // Levels change at endpoints; profile ends at level 0.
  EXPECT_EQ(profile.back().second, 0);
  for (size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LT(profile[i - 1].first, profile[i].first);
    EXPECT_NE(profile[i - 1].second, profile[i].second);
  }
}

TEST(PresenceTrace, TouchingIntervalsDoNotDoubleCount) {
  // Departure at t and arrival at t: the departing worker leaves first.
  auto trace =
      PresenceTrace::Create({{1, 0.0, 2.0}, {2, 2.0, 4.0}}, 4.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->PeakConcurrency(), 1);
}

TEST(PresenceTrace, AvailabilityFractionCountsDistinctWorkers) {
  auto trace = PresenceTrace::Create(
      {{7, 0.0, 1.0}, {7, 2.0, 3.0}, {9, 0.5, 1.5}}, 10.0);
  ASSERT_TRUE(trace.ok());
  auto fraction = trace->AvailabilityFraction(10);
  ASSERT_TRUE(fraction.ok());
  EXPECT_DOUBLE_EQ(*fraction, 0.2);  // workers 7 and 9 of 10
  EXPECT_FALSE(trace->AvailabilityFraction(0).ok());
}

TEST(PresenceTrace, FromPoolRecordsMatchesPoolAvailability) {
  platform::WorkerPool pool(platform::WorkerPoolOptions{}, 11);
  Rng rng(12);
  const auto records = pool.SimulateWindow(
      platform::DeploymentWindow::kEarlyWeek,
      platform::TaskType::kSentenceTranslation, &rng);
  auto trace = PresenceTrace::FromPresenceRecords(records, 72.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_intervals(), records.size());
  auto fraction = trace->AvailabilityFraction(pool.SuitableWorkerCount(
      platform::TaskType::kSentenceTranslation));
  ASSERT_TRUE(fraction.ok());
  EXPECT_GT(*fraction, 0.5);  // early week is busy
  EXPECT_LE(*fraction, 1.0);
  EXPECT_GT(trace->PeakConcurrency(), 0);
}

TEST(Bootstrap, Validation) {
  EXPECT_FALSE(stats::BootstrapMeanCi({}, 0.9, 1000, 1).ok());
  EXPECT_FALSE(stats::BootstrapMeanCi({1.0, 2.0}, 1.5, 1000, 1).ok());
  EXPECT_FALSE(stats::BootstrapMeanCi({1.0, 2.0}, 0.9, 10, 1).ok());
}

TEST(Bootstrap, IntervalContainsPointEstimate) {
  const std::vector<double> sample = {0.6, 0.7, 0.65, 0.72, 0.68, 0.63};
  auto ci = stats::BootstrapMeanCi(sample, 0.9, 2000, 7);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->point, stats::Mean(sample).value(), 1e-12);
  EXPECT_LE(ci->lo, ci->point);
  EXPECT_GE(ci->hi, ci->point);
  EXPECT_TRUE(ci->Contains(ci->point));
}

TEST(Bootstrap, CoverageApproximatelyNominal) {
  Rng rng(99);
  int contained = 0;
  const int runs = 200;
  for (int r = 0; r < runs; ++r) {
    std::vector<double> sample;
    for (int i = 0; i < 25; ++i) sample.push_back(rng.Normal(0.5, 0.1));
    auto ci = stats::BootstrapMeanCi(sample, 0.9, 500,
                                     static_cast<uint64_t>(r) + 1);
    ASSERT_TRUE(ci.ok());
    contained += ci->Contains(0.5) ? 1 : 0;
  }
  const double coverage = static_cast<double>(contained) / runs;
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.97);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0, 100.0};
  auto ci = stats::BootstrapCi(
      sample,
      [](const std::vector<double>& xs) {
        return stats::Median(xs).value_or(0.0);
      },
      0.9, 1000, 3);
  ASSERT_TRUE(ci.ok());
  // The point estimate is the sample median, robust to the outlier.
  EXPECT_DOUBLE_EQ(ci->point, 3.0);
  EXPECT_TRUE(ci->Contains(3.0));
  EXPECT_GE(ci->lo, 1.0);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const std::vector<double> sample = {0.1, 0.5, 0.9, 0.3};
  auto a = stats::BootstrapMeanCi(sample, 0.9, 500, 42);
  auto b = stats::BootstrapMeanCi(sample, 0.9, 500, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->lo, b->lo);
  EXPECT_DOUBLE_EQ(a->hi, b->hi);
}

}  // namespace
}  // namespace stratrec
