// Unit tests for src/common: Status/Result, Rng, AsciiTable, CsvWriter,
// float comparisons, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "src/common/ascii_table.h"
#include "src/common/csv.h"
#include "src/common/float_compare.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace stratrec {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInfeasible, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(Result, HoldsValueOrStatus) {
  auto good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.value_or(-1), 7);

  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates() {
  STRATREC_RETURN_NOT_OK(Status::NotFound("missing"));
  return Status::Internal("unreachable");
}

TEST(Result, ReturnNotOkMacroPropagates) {
  Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(0.625, 1.0);
    EXPECT_GE(u, 0.625);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.TruncatedNormal(0.75, 0.1, 0.5, 1.0);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateWindowClamps) {
  Rng rng(12);
  // Window far away from the mean: must still return something inside.
  const double v = rng.TruncatedNormal(10.0, 0.001, 0.0, 1.0);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  for (double lambda : {0.5, 3.45, 6.25, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroRate) {
  Rng rng(14);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.35) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.35, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(18);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name  | value"), std::string::npos);
  EXPECT_NE(out.find("alpha | 1"), std::string::npos);
  EXPECT_NE(out.find("------+------"), std::string::npos);
}

TEST(AsciiTable, HandlesRaggedRows) {
  AsciiTable table({"a"});
  table.AddRow({"x", "extra"});
  table.AddRow({});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_FALSE(table.ToString().empty());
}

TEST(AsciiTable, NumericRowFormatsPrecision) {
  AsciiTable table({"label", "v1", "v2"});
  table.AddNumericRow("row", {0.123456, 2.0}, 3);
  EXPECT_NE(table.ToString().find("0.123"), std::string::npos);
  EXPECT_NE(table.ToString().find("2.000"), std::string::npos);
}

TEST(FormatDoubleTest, RoundsToPrecision) {
  EXPECT_EQ(FormatDouble(0.56789, 2), "0.57");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"quote\"inside", "multi\nline"});
  const std::string doc = csv.ToString();
  EXPECT_NE(doc.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(doc.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x", "y"});
  csv.AddNumericRow({1.5, 2.5});
  const std::string path = testing::TempDir() + "/stratrec_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const size_t read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string contents(buf, read);
  EXPECT_NE(contents.find("x,y"), std::string::npos);
  EXPECT_NE(contents.find("1.5"), std::string::npos);
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/file.csv").ok());
}

TEST(FloatCompare, ApproxComparisons) {
  EXPECT_TRUE(ApproxEq(0.1 + 0.2, 0.3));
  EXPECT_TRUE(ApproxLe(0.3 + 1e-12, 0.3));
  EXPECT_TRUE(ApproxGe(0.3 - 1e-12, 0.3));
  EXPECT_FALSE(ApproxLe(0.31, 0.3));
  EXPECT_FALSE(ApproxGe(0.29, 0.3));
}

TEST(FloatCompare, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ClampUnit(1.7), 1.0);
}

TEST(Logging, LevelGate) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Should not crash, and be filtered.
  STRATREC_LOG(kDebug) << "suppressed " << 42;
  SetLogLevel(before);
}

}  // namespace
}  // namespace stratrec
