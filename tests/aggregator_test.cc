// Tests for the Aggregator pipeline (Figure 1's middle box): strategy
// parameter estimation at W, wiring into the batch schedulers, and input
// validation.
#include <gtest/gtest.h>

#include "src/core/aggregator.h"

namespace stratrec::core {
namespace {

Aggregator MakeExample1Aggregator() {
  std::vector<Strategy> strategies = {
      {"s1", ParseStageName("SIM-COL-CRO").value()},
      {"s2", ParseStageName("SEQ-IND-CRO").value()},
      {"s3", ParseStageName("SIM-IND-CRO").value()},
      {"s4", ParseStageName("SIM-IND-HYB").value()},
  };
  std::vector<StrategyProfile> profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return Aggregator::Create(std::move(strategies), std::move(profiles)).value();
}

TEST(Aggregator, CreateValidatesInputs) {
  EXPECT_FALSE(Aggregator::Create({}, {}).ok());
  std::vector<Strategy> one = {{"s", StageSpec{}}};
  EXPECT_FALSE(Aggregator::Create(one, {}).ok());  // misaligned
}

TEST(Aggregator, EstimatesTable1ParamsAtW) {
  const Aggregator aggregator = MakeExample1Aggregator();
  auto report = aggregator.RunAtAvailability({}, 0.8, {});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->strategy_params.size(), 4u);
  EXPECT_NEAR(report->strategy_params[0].quality, 0.50, 1e-9);
  EXPECT_NEAR(report->strategy_params[0].cost, 0.25, 1e-9);
  EXPECT_NEAR(report->strategy_params[0].latency, 0.28, 1e-9);
  EXPECT_NEAR(report->strategy_params[3].quality, 0.88, 1e-9);
  EXPECT_NEAR(report->strategy_params[3].cost, 0.58, 1e-9);
  EXPECT_NEAR(report->strategy_params[3].latency, 0.14, 1e-9);
  EXPECT_DOUBLE_EQ(report->availability, 0.8);
}

TEST(Aggregator, ParamsShiftWithAvailability) {
  const Aggregator aggregator = MakeExample1Aggregator();
  auto low = aggregator.RunAtAvailability({}, 0.5, {});
  auto high = aggregator.RunAtAvailability({}, 0.95, {});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_LT(low->strategy_params[j].quality,
              high->strategy_params[j].quality);
    EXPECT_LT(low->strategy_params[j].cost, high->strategy_params[j].cost);
    EXPECT_GT(low->strategy_params[j].latency,
              high->strategy_params[j].latency);
  }
}

TEST(Aggregator, RunUsesPmfExpectation) {
  const Aggregator aggregator = MakeExample1Aggregator();
  auto availability = AvailabilityModel::FromPmf({{0.7, 0.5}, {0.9, 0.5}});
  ASSERT_TRUE(availability.ok());
  auto report = aggregator.Run({}, *availability, {});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->availability, 0.8);
}

TEST(Aggregator, RejectsOutOfRangeAvailability) {
  const Aggregator aggregator = MakeExample1Aggregator();
  EXPECT_FALSE(aggregator.RunAtAvailability({}, -0.1, {}).ok());
  EXPECT_FALSE(aggregator.RunAtAvailability({}, 1.1, {}).ok());
}

TEST(Aggregator, AlgorithmSelectionChangesOutcome) {
  const Aggregator aggregator = MakeExample1Aggregator();
  std::vector<DeploymentRequest> requests = {
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
  BatchOptions options;
  options.aggregation = AggregationMode::kMax;
  for (auto algorithm : {BatchAlgorithm::kBatchStrat, BatchAlgorithm::kBaselineG,
                         BatchAlgorithm::kBruteForce}) {
    auto report = aggregator.RunAtAvailability(requests, 0.8, options,
                                               algorithm);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->batch.satisfied.size(), 1u);  // d3 serveable by all
  }
}

TEST(Aggregator, StrategiesAccessorsExposeCatalog) {
  const Aggregator aggregator = MakeExample1Aggregator();
  EXPECT_EQ(aggregator.strategies().size(), 4u);
  EXPECT_EQ(aggregator.profiles().size(), 4u);
  EXPECT_EQ(aggregator.strategies()[1].Describe(), "SEQ-IND-CRO");
}

}  // namespace
}  // namespace stratrec::core
