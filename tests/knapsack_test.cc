// Unit + property tests for the shared knapsack machinery.
#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/core/knapsack.h"

namespace stratrec::core {
namespace {

KnapsackItem Item(size_t index, double weight, double value) {
  KnapsackItem item;
  item.index = index;
  item.weight = weight;
  item.value = value;
  item.sort_value = value;
  return item;
}

TEST(Knapsack, EmptyInput) {
  EXPECT_TRUE(GreedyKnapsack({}, 1.0, {}).empty());
  auto exact = BruteForceKnapsack({}, 1.0);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
}

TEST(Knapsack, TakesEverythingThatFits) {
  const std::vector<KnapsackItem> items = {Item(0, 0.3, 1.0), Item(1, 0.4, 1.0),
                                           Item(2, 0.2, 1.0)};
  const auto chosen = GreedyKnapsack(items, 1.0, {});
  EXPECT_EQ(chosen.size(), 3u);
  EXPECT_NEAR(TotalWeight(chosen), 0.9, 1e-12);
  EXPECT_NEAR(TotalValue(chosen), 3.0, 1e-12);
}

TEST(Knapsack, ZeroWeightItemsAlwaysTaken) {
  const std::vector<KnapsackItem> items = {Item(0, 0.0, 0.1),
                                           Item(1, 0.5, 10.0)};
  const auto chosen = GreedyKnapsack(items, 0.0, {});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].index, 0u);
}

TEST(Knapsack, GuardRescuesBigItem) {
  // Density greedy takes the small dense item; the guard must return the
  // big one.
  const std::vector<KnapsackItem> items = {Item(0, 0.05, 0.06),
                                           Item(1, 1.0, 0.9)};
  GreedyKnapsackOptions no_guard;
  no_guard.single_item_guard = false;
  EXPECT_NEAR(TotalValue(GreedyKnapsack(items, 1.0, no_guard)), 0.06, 1e-12);

  GreedyKnapsackOptions with_guard;
  with_guard.single_item_guard = true;
  EXPECT_NEAR(TotalValue(GreedyKnapsack(items, 1.0, with_guard)), 0.9, 1e-12);
}

TEST(Knapsack, SortValueOverridesValueOrdering) {
  // Two items, only one fits. value prefers item 0, sort_value item 1.
  std::vector<KnapsackItem> items = {Item(0, 0.6, 1.0), Item(1, 0.6, 0.5)};
  items[1].sort_value = 10.0;
  GreedyKnapsackOptions options;
  options.single_item_guard = false;
  options.use_sort_value = true;
  const auto chosen = GreedyKnapsack(items, 0.6, options);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].index, 1u);
}

TEST(Knapsack, DeterministicTieBreaks) {
  const std::vector<KnapsackItem> items = {Item(2, 0.5, 1.0), Item(0, 0.5, 1.0),
                                           Item(1, 0.5, 1.0)};
  const auto chosen = GreedyKnapsack(items, 0.5, {});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].index, 0u);  // smallest index wins the tie
}

TEST(Knapsack, BruteForceGuardsSize) {
  std::vector<KnapsackItem> many(26, Item(0, 0.1, 1.0));
  EXPECT_FALSE(BruteForceKnapsack(many, 1.0).ok());
  EXPECT_TRUE(BruteForceKnapsack(many, 1.0, /*max_items=*/26).ok());
}

// Reference oracle for the Gray-code incremental enumeration: the original
// ascending-mask scan with per-mask from-scratch sums.
std::vector<KnapsackItem> NaiveBruteForce(const std::vector<KnapsackItem>& items,
                                          double capacity) {
  const size_t n = items.size();
  uint64_t best_mask = 0;
  double best_value = 0.0;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    double weight = 0.0, value = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        weight += items[i].weight;
        value += items[i].value;
      }
    }
    if (weight > capacity + 1e-9) continue;
    if (value > best_value) {
      best_value = value;
      best_mask = mask;
    }
  }
  std::vector<KnapsackItem> chosen;
  for (size_t i = 0; i < n; ++i) {
    if (best_mask & (1ull << i)) chosen.push_back(items[i]);
  }
  return chosen;
}

TEST(Knapsack, GrayCodeEnumerationMatchesNaiveScan) {
  Rng rng(0x6EA7C0DEull);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(0, 12));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i) {
      items.push_back(Item(static_cast<size_t>(i), rng.Uniform(0.0, 0.6),
                           rng.Uniform(0.0, 1.0)));
    }
    const double capacity = rng.Uniform(0.0, 1.5);
    auto gray = BruteForceKnapsack(items, capacity);
    ASSERT_TRUE(gray.ok());
    const auto naive = NaiveBruteForce(items, capacity);
    ASSERT_EQ(gray->size(), naive.size()) << "trial " << trial;
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ((*gray)[i].index, naive[i].index) << "trial " << trial;
    }
  }
}

class KnapsackPropertyTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(KnapsackPropertyTest, GreedyWithGuardIsHalfApproximation) {
  const int n = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i) {
      items.push_back(Item(static_cast<size_t>(i), rng.Uniform(0.01, 0.6),
                           rng.Uniform(0.1, 1.0)));
    }
    const double capacity = rng.Uniform(0.2, 1.5);
    auto exact = BruteForceKnapsack(items, capacity);
    ASSERT_TRUE(exact.ok());
    GreedyKnapsackOptions guard;
    guard.single_item_guard = true;
    const auto greedy = GreedyKnapsack(items, capacity, guard);
    EXPECT_GE(TotalValue(greedy), 0.5 * TotalValue(*exact) - 1e-9);
    EXPECT_LE(TotalValue(greedy), TotalValue(*exact) + 1e-9);
    EXPECT_LE(TotalWeight(greedy), capacity + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, KnapsackPropertyTest,
                         testing::Combine(testing::Values(4, 8, 14),
                                          testing::Values(5u, 6u, 7u)));

}  // namespace
}  // namespace stratrec::core
