// Unit tests for ADPaR-Exact and its baselines (Section 4, Section 5.2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/adpar.h"
#include "src/core/adpar_baselines.h"

namespace stratrec::core {
namespace {

const std::vector<ParamVector> kTable1 = {
    {0.50, 0.25, 0.28},
    {0.75, 0.33, 0.28},
    {0.80, 0.50, 0.14},
    {0.88, 0.58, 0.14},
};

TEST(AdparExactTest, ZeroDistanceWhenAlreadySatisfiable) {
  const ParamVector d{0.7, 0.83, 0.28};  // d3: satisfiable with k = 3
  auto result = AdparExact(kTable1, d, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->squared_distance, 0.0);
  EXPECT_DOUBLE_EQ(result->distance, 0.0);
  EXPECT_EQ(result->alternative.quality, d.quality);
  EXPECT_EQ(result->alternative.cost, d.cost);
  EXPECT_EQ(result->alternative.latency, d.latency);
  EXPECT_EQ(result->strategies.size(), 3u);
}

TEST(AdparExactTest, InfeasibleWhenKExceedsCatalog) {
  auto result = AdparExact(kTable1, {0.5, 0.5, 0.5}, 5);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
  EXPECT_FALSE(AdparExact(kTable1, {0.5, 0.5, 0.5}, 0).ok());
  EXPECT_FALSE(AdparExact({}, {0.5, 0.5, 0.5}, 1).ok());
}

TEST(AdparExactTest, KEqualsCatalogCoversEverything) {
  auto result = AdparExact(kTable1, {0.9, 0.1, 0.1}, 4);
  ASSERT_TRUE(result.ok());
  // Must cover all four strategies: quality <= 0.5, cost >= 0.58,
  // latency >= 0.28.
  EXPECT_NEAR(result->alternative.quality, 0.50, 1e-12);
  EXPECT_NEAR(result->alternative.cost, 0.58, 1e-12);
  EXPECT_NEAR(result->alternative.latency, 0.28, 1e-12);
  EXPECT_EQ(result->strategies.size(), 4u);
}

TEST(AdparExactTest, AlternativeAlwaysCoversK) {
  auto result = AdparExact(kTable1, {0.99, 0.01, 0.01}, 2);
  ASSERT_TRUE(result.ok());
  int covered = 0;
  for (const auto& s : kTable1) {
    covered += Satisfies(s, result->alternative) ? 1 : 0;
  }
  EXPECT_GE(covered, 2);
}

TEST(AdparExactTest, RelaxationIsOneDirectional) {
  const ParamVector d{0.8, 0.2, 0.28};
  auto result = AdparExact(kTable1, d, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->alternative.quality, d.quality + 1e-12);
  EXPECT_GE(result->alternative.cost, d.cost - 1e-12);
  EXPECT_GE(result->alternative.latency, d.latency - 1e-12);
}

TEST(AdparExactTest, CoordinatesAreTight) {
  // Every coordinate of d' equals the original coordinate or some strategy's
  // coordinate (the discretization that makes the sweep exact).
  const ParamVector d{0.8, 0.2, 0.28};
  auto result = AdparExact(kTable1, d, 3);
  ASSERT_TRUE(result.ok());
  auto is_candidate = [&](double v, int axis) {
    if (axis == 0 && v == d.quality) return true;
    if (axis == 1 && v == d.cost) return true;
    if (axis == 2 && v == d.latency) return true;
    for (const auto& s : kTable1) {
      const double coord = axis == 0 ? s.quality : (axis == 1 ? s.cost : s.latency);
      if (v == coord) return true;
    }
    return false;
  };
  EXPECT_TRUE(is_candidate(result->alternative.quality, 0));
  EXPECT_TRUE(is_candidate(result->alternative.cost, 1));
  EXPECT_TRUE(is_candidate(result->alternative.latency, 2));
}

TEST(AdparExactTest, LatencyOnlyRelaxation) {
  // All strategies fast enough except the latency bound is brutal.
  const ParamVector d{0.5, 0.6, 0.10};
  auto result = AdparExact(kTable1, d, 2);
  ASSERT_TRUE(result.ok());
  // Best: keep quality/cost, relax latency to 0.14 (s3, s4 qualify on
  // quality >= 0.5... but s4 costs 0.58 <= 0.6, s3 0.5 <= 0.6: both fit).
  EXPECT_NEAR(result->alternative.latency, 0.14, 1e-12);
  EXPECT_NEAR(result->alternative.cost, 0.6, 1e-12);
  EXPECT_NEAR(result->alternative.quality, 0.5, 1e-12);
  EXPECT_NEAR(result->squared_distance, 0.04 * 0.04, 1e-12);
}

TEST(AdparExactTest, PrefersCheapestAxisCombination) {
  // Two ways to cover k=1: lower quality a lot or raise cost a little.
  const std::vector<ParamVector> strategies = {
      {0.2, 0.10, 0.1},  // would need quality 0.8 -> 0.2 (huge)
      {0.9, 0.15, 0.1},  // needs cost 0.10 -> 0.15 (tiny)
  };
  auto result = AdparExact(strategies, {0.8, 0.10, 0.2}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->alternative.cost, 0.15, 1e-12);
  EXPECT_NEAR(result->alternative.quality, 0.8, 1e-12);
  EXPECT_NEAR(result->squared_distance, 0.05 * 0.05, 1e-12);
}

TEST(AdparExactTest, DuplicateStrategiesCountSeparately) {
  const std::vector<ParamVector> strategies = {
      {0.6, 0.3, 0.2}, {0.6, 0.3, 0.2}, {0.6, 0.3, 0.2}};
  auto result = AdparExact(strategies, {0.9, 0.1, 0.1}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategies.size(), 3u);
  EXPECT_NEAR(result->alternative.quality, 0.6, 1e-12);
  EXPECT_NEAR(result->alternative.cost, 0.3, 1e-12);
  EXPECT_NEAR(result->alternative.latency, 0.2, 1e-12);
}

TEST(AdparBruteTest, MatchesExactOnTable1) {
  for (int k = 1; k <= 4; ++k) {
    for (const ParamVector& d :
         {ParamVector{0.4, 0.17, 0.28}, ParamVector{0.8, 0.2, 0.28},
          ParamVector{0.95, 0.05, 0.05}}) {
      auto exact = AdparExact(kTable1, d, k);
      auto brute = AdparBrute(kTable1, d, k);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(exact->squared_distance, brute->squared_distance, 1e-12)
          << "k=" << k << " d=" << d.ToString();
    }
  }
}

TEST(AdparBruteTest, CombinationGuard) {
  std::vector<ParamVector> many(64, ParamVector{0.5, 0.5, 0.5});
  auto result = AdparBrute(many, {0.9, 0.1, 0.1}, 20, /*max_combinations=*/1000);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(Baseline2Test, SingleAxisWhenSufficient) {
  // d1 from the paper: relaxing cost alone to 0.5 covers {s1, s2, s3}.
  auto result = AdparBaseline2(kTable1, {0.4, 0.17, 0.28}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->alternative.cost, 0.5, 1e-12);
  EXPECT_NEAR(result->alternative.quality, 0.4, 1e-12);
  EXPECT_NEAR(result->alternative.latency, 0.28, 1e-12);
}

TEST(Baseline2Test, FallsBackToMultiAxisWhenNeeded) {
  // d2: no single axis suffices for k = 3 (quality alone: cost cap 0.2
  // admits nobody; cost alone: only s3, s4 have quality >= 0.8).
  auto result = AdparBaseline2(kTable1, {0.8, 0.2, 0.28}, 3);
  ASSERT_TRUE(result.ok());
  int covered = 0;
  for (const auto& s : kTable1) {
    covered += Satisfies(s, result->alternative) ? 1 : 0;
  }
  EXPECT_GE(covered, 3);
  // Never better than exact.
  auto exact = AdparExact(kTable1, {0.8, 0.2, 0.28}, 3);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(result->squared_distance, exact->squared_distance - 1e-12);
}

TEST(Baseline3Test, ReturnsValidCoveringAlternative) {
  for (int k = 1; k <= 4; ++k) {
    auto result = AdparBaseline3(kTable1, {0.8, 0.2, 0.28}, k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    int covered = 0;
    for (const auto& s : kTable1) {
      covered += Satisfies(s, result->alternative) ? 1 : 0;
    }
    EXPECT_GE(covered, k);
    EXPECT_EQ(result->strategies.size(), static_cast<size_t>(k));
  }
}

TEST(BaselinesTest, RejectBadInput) {
  EXPECT_FALSE(AdparBrute(kTable1, {0.5, 0.5, 0.5}, 0).ok());
  EXPECT_FALSE(AdparBaseline2(kTable1, {0.5, 0.5, 0.5}, 9).ok());
  EXPECT_FALSE(AdparBaseline3({}, {0.5, 0.5, 0.5}, 1).ok());
}

TEST(AdparResultTest, DistanceIsSqrtOfSquared) {
  auto result = AdparExact(kTable1, {0.8, 0.2, 0.28}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, std::sqrt(result->squared_distance), 1e-15);
}

}  // namespace
}  // namespace stratrec::core
