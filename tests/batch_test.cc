// Unit + property tests for the batch schedulers (Section 3.3): throughput
// exactness (Theorem 2), the pay-off 1/2-approximation (Theorem 3), baseline
// dominance, and capacity discipline.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/core/batch_scheduler.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

// A profile whose minimal workforce for a request with quality threshold q
// is exactly `w` (quality = w at threshold, everything else free).
StrategyProfile ProfileNeeding(double w, double quality_threshold = 0.5) {
  StrategyProfile profile;
  // quality(x) = quality_threshold + (x - w), so quality(w) == threshold.
  profile.quality = {1.0, quality_threshold - w};
  profile.cost = {0.0, 0.0};
  profile.latency = {0.0, 0.0};
  return profile;
}

DeploymentRequest Request(std::string id, double budget, int k = 1) {
  DeploymentRequest request;
  request.id = std::move(id);
  request.thresholds = {0.5, budget, 1.0};
  request.k = k;
  return request;
}

TEST(BatchScheduler, ServesEverythingWhenCapacityAllows) {
  // Two requests, each needing 0.3 via the single strategy.
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.3)};
  const std::vector<DeploymentRequest> requests = {Request("d1", 0.8),
                                                   Request("d2", 0.6)};
  auto result = BatchStrat(requests, profiles, 0.7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->satisfied.size(), 2u);
  EXPECT_NEAR(result->workforce_used, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(result->total_objective, 2.0);
  EXPECT_TRUE(result->unsatisfied.empty());
}

TEST(BatchScheduler, RespectsCapacity) {
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.4)};
  const std::vector<DeploymentRequest> requests = {
      Request("d1", 0.8), Request("d2", 0.6), Request("d3", 0.9)};
  auto result = BatchStrat(requests, profiles, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->satisfied.size(), 2u);  // 2 * 0.4 <= 1.0 < 3 * 0.4
  EXPECT_LE(result->workforce_used, 1.0 + 1e-9);
}

TEST(BatchScheduler, ZeroCapacityServesOnlyFreeRequests) {
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.0)};
  const std::vector<DeploymentRequest> requests = {Request("d1", 0.5)};
  auto result = BatchStrat(requests, profiles, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->satisfied.size(), 1u);

  const std::vector<StrategyProfile> costly = {ProfileNeeding(0.1)};
  auto none = BatchStrat(requests, costly, 0.0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->satisfied.empty());
  EXPECT_EQ(none->unsatisfied.size(), 1u);
}

TEST(BatchScheduler, IneligibleRequestsGoToUnsatisfied) {
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.3)};
  // k = 2 but only one strategy exists: not eligible regardless of W.
  const std::vector<DeploymentRequest> requests = {Request("d1", 0.8, 2)};
  auto result = BatchStrat(requests, profiles, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied.empty());
  EXPECT_FALSE(result->outcomes[0].eligible);
  EXPECT_EQ(result->unsatisfied, (std::vector<size_t>{0}));
}

TEST(BatchScheduler, RecommendsKCheapestStrategies) {
  std::vector<StrategyProfile> profiles = {
      ProfileNeeding(0.5), ProfileNeeding(0.1), ProfileNeeding(0.3)};
  const std::vector<DeploymentRequest> requests = {Request("d1", 0.8, 2)};
  BatchOptions options;
  options.aggregation = AggregationMode::kSum;
  auto result = BatchStrat(requests, profiles, 1.0, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->satisfied.size(), 1u);
  EXPECT_EQ(result->outcomes[0].strategies, (std::vector<size_t>{1, 2}));
  EXPECT_NEAR(result->outcomes[0].workforce, 0.4, 1e-12);
}

TEST(BatchScheduler, InvalidInputsRejected) {
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.3)};
  EXPECT_FALSE(BatchStrat({Request("d", 0.5, 0)}, profiles, 0.5).ok());
  EXPECT_FALSE(BatchStrat({Request("d", 0.5)}, profiles, -0.1).ok());
  DeploymentRequest bad;
  bad.id = "bad";
  bad.thresholds = {2.0, 0.5, 0.5};
  bad.k = 1;
  EXPECT_FALSE(BatchStrat({bad}, profiles, 0.5).ok());
}

TEST(BatchScheduler, BruteForceGuardsAgainstLargeBatches) {
  const std::vector<StrategyProfile> profiles = {ProfileNeeding(0.001)};
  std::vector<DeploymentRequest> requests;
  for (int i = 0; i < 26; ++i) requests.push_back(Request("d", 0.5));
  EXPECT_FALSE(BruteForceBatch(requests, profiles, 1.0).ok());
}

TEST(BatchScheduler, PayoffPrefersBigSingleItemOverGreedyPrefix) {
  // Classic knapsack greedy trap: one dense small item plus one huge item
  // that does not fit next to it. Greedy density picks the small one
  // (density 0.06 / 0.05 = 1.2 vs 0.9 / 1.0); the single-item guard must
  // notice that the big item alone (payoff 0.9) is better.
  //
  // A single strategy with quality(w) = w makes each request's workforce
  // requirement equal its quality threshold.
  StrategyProfile identity;
  identity.quality = {1.0, 0.0};
  identity.cost = {0.0, 0.0};
  identity.latency = {0.0, 0.0};
  const std::vector<StrategyProfile> trap = {identity};

  DeploymentRequest d1{"small", {0.05, 0.06, 1.0}, 1};  // w=0.05, payoff 0.06
  DeploymentRequest d2{"big", {1.0, 0.9, 1.0}, 1};      // w=1.00, payoff 0.90

  BatchOptions options;
  options.objective = Objective::kPayoff;
  auto greedy = BaselineG({d1, d2}, trap, 1.0, options);
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(greedy->total_objective, 0.06, 1e-12);

  auto guarded = BatchStrat({d1, d2}, trap, 1.0, options);
  ASSERT_TRUE(guarded.ok());
  EXPECT_NEAR(guarded->total_objective, 0.9, 1e-12);

  auto optimal = BruteForceBatch({d1, d2}, trap, 1.0, options);
  ASSERT_TRUE(optimal.ok());
  EXPECT_NEAR(optimal->total_objective, 0.9, 1e-12);
}

// ---------------------------------------------------------------------------
// Property sweeps on random instances (Section 5.2-style workloads).
// ---------------------------------------------------------------------------

class BatchPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, uint64_t>> {
 protected:
  void Generate() {
    const int m = std::get<0>(GetParam());
    const int num_strategies = std::get<1>(GetParam());
    const uint64_t seed = std::get<2>(GetParam());
    workload::GeneratorOptions options;
    workload::Generator generator(options, seed);
    profiles_ = generator.Profiles(num_strategies);
    requests_ = generator.Requests(m, /*k=*/2);
  }
  std::vector<StrategyProfile> profiles_;
  std::vector<DeploymentRequest> requests_;
};

TEST_P(BatchPropertyTest, ThroughputGreedyIsExact) {
  Generate();
  BatchOptions options;
  options.objective = Objective::kThroughput;
  for (double w : {0.2, 0.5, 0.9}) {
    auto greedy = BatchStrat(requests_, profiles_, w, options);
    auto exact = BruteForceBatch(requests_, profiles_, w, options);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_DOUBLE_EQ(greedy->total_objective, exact->total_objective)
        << "W=" << w;
  }
}

TEST_P(BatchPropertyTest, PayoffGreedyWithinHalfOfOptimal) {
  Generate();
  BatchOptions options;
  options.objective = Objective::kPayoff;
  for (double w : {0.2, 0.5, 0.9}) {
    auto greedy = BatchStrat(requests_, profiles_, w, options);
    auto exact = BruteForceBatch(requests_, profiles_, w, options);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(greedy->total_objective, 0.5 * exact->total_objective - 1e-9);
    EXPECT_LE(greedy->total_objective, exact->total_objective + 1e-9);
    // BaselineG never beats the guarded greedy on pay-off.
    auto baseline = BaselineG(requests_, profiles_, w, options);
    ASSERT_TRUE(baseline.ok());
    EXPECT_LE(baseline->total_objective, greedy->total_objective + 1e-9);
  }
}

TEST_P(BatchPropertyTest, CapacityAndBookkeepingInvariants) {
  Generate();
  for (auto objective : {Objective::kThroughput, Objective::kPayoff}) {
    for (auto aggregation : {AggregationMode::kSum, AggregationMode::kMax}) {
      BatchOptions options;
      options.objective = objective;
      options.aggregation = aggregation;
      auto result = BatchStrat(requests_, profiles_, 0.5, options);
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result->workforce_used, 0.5 + 1e-9);
      EXPECT_EQ(result->satisfied.size() + result->unsatisfied.size(),
                requests_.size());
      double recomputed = 0.0;
      for (size_t i : result->satisfied) {
        const auto& outcome = result->outcomes[i];
        EXPECT_TRUE(outcome.satisfied);
        EXPECT_TRUE(outcome.eligible);
        EXPECT_EQ(outcome.strategies.size(),
                  static_cast<size_t>(requests_[i].k));
        recomputed += outcome.workforce;
      }
      EXPECT_NEAR(recomputed, result->workforce_used, 1e-9);
    }
  }
}

TEST_P(BatchPropertyTest, MoreWorkforceNeverHurts) {
  Generate();
  BatchOptions options;
  options.objective = Objective::kThroughput;
  double previous = -1.0;
  for (double w : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto result = BatchStrat(requests_, profiles_, w, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->total_objective, previous);
    previous = result->total_objective;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BatchPropertyTest,
    testing::Combine(testing::Values(4, 8, 12), testing::Values(6, 20),
                     testing::Values(11u, 22u, 33u, 44u)));

}  // namespace
}  // namespace stratrec::core
