// Unit tests for the platform simulator: workers, pools, editing dynamics,
// ground truth, execution, experts.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/linear_model.h"
#include "src/platform/edit_model.h"
#include "src/platform/execution.h"
#include "src/platform/expert.h"
#include "src/platform/ground_truth.h"
#include "src/platform/task.h"
#include "src/platform/worker.h"
#include "src/platform/worker_pool.h"
#include "src/stats/descriptive.h"

namespace stratrec::platform {
namespace {

core::StageSpec SeqIndCro() {
  return core::ParseStageName("SEQ-IND-CRO").value();
}
core::StageSpec SimColCro() {
  return core::ParseStageName("SIM-COL-CRO").value();
}

TEST(TaskTest, NamesAndSamples) {
  EXPECT_STREQ(TaskTypeName(TaskType::kSentenceTranslation), "translation");
  EXPECT_STREQ(TaskTypeName(TaskType::kTextCreation), "creation");
  for (TaskType type :
       {TaskType::kSentenceTranslation, TaskType::kTextCreation}) {
    const auto tasks = SampleTasks(type);
    EXPECT_EQ(tasks.size(), 3u);  // paper: 3 tasks per HIT
    for (const auto& task : tasks) EXPECT_EQ(task.type, type);
  }
}

TEST(TaskTest, HitDefaultsMatchPaper) {
  const Hit hit = MakeHit("h", TaskType::kTextCreation,
                          SampleTasks(TaskType::kTextCreation));
  EXPECT_EQ(hit.max_workers, 10);
  EXPECT_DOUBLE_EQ(hit.pay_per_worker_usd, 2.0);
  EXPECT_DOUBLE_EQ(hit.allotted_hours, 2.0);
  EXPECT_DOUBLE_EQ(hit.deployment_hours, 72.0);
}

TEST(WorkerTest, FiltersMatchPaperRecruitment) {
  WorkerProfile worker;
  worker.hit_approval_rate = 0.95;
  worker.region = Region::kIndia;
  worker.bachelors_degree = false;

  // Translation: US/India, approval > 90%.
  EXPECT_TRUE(PassesFilter(worker, FilterForTaskType(
                                       TaskType::kSentenceTranslation)));
  // Creation: US + Bachelor's.
  EXPECT_FALSE(PassesFilter(worker, FilterForTaskType(TaskType::kTextCreation)));
  worker.region = Region::kUs;
  worker.bachelors_degree = true;
  EXPECT_TRUE(PassesFilter(worker, FilterForTaskType(TaskType::kTextCreation)));
  worker.hit_approval_rate = 0.80;
  EXPECT_FALSE(PassesFilter(worker, FilterForTaskType(TaskType::kTextCreation)));
}

TEST(WorkerTest, SampledProfilesAreInRange) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const WorkerProfile worker = SampleWorker(i, &rng);
    EXPECT_GE(worker.skill, 0.3);
    EXPECT_LE(worker.skill, 1.0);
    EXPECT_GE(worker.hit_approval_rate, 0.5);
    EXPECT_LE(worker.hit_approval_rate, 1.0);
    for (double aptitude : worker.type_aptitude) {
      EXPECT_GE(aptitude, 0.75);
      EXPECT_LE(aptitude, 1.0);
    }
  }
}

TEST(WorkerTest, QualificationSelectsSkilledWorkers) {
  Rng rng(4);
  WorkerProfile expert;
  expert.skill = 0.98;
  expert.type_aptitude[0] = expert.type_aptitude[1] = 1.0;
  WorkerProfile novice;
  novice.skill = 0.40;
  novice.type_aptitude[0] = novice.type_aptitude[1] = 1.0;

  int expert_passes = 0, novice_passes = 0;
  for (int i = 0; i < 200; ++i) {
    expert_passes +=
        PassesQualification(expert, TaskType::kTextCreation, &rng) ? 1 : 0;
    novice_passes +=
        PassesQualification(novice, TaskType::kTextCreation, &rng) ? 1 : 0;
  }
  EXPECT_GT(expert_passes, 180);
  EXPECT_EQ(novice_passes, 0);
}

TEST(WorkerPoolTest, EarlyWeekIsBusiest) {
  // Figure 11: window 2 (Mon-Thu) shows the highest availability.
  WorkerPool pool(WorkerPoolOptions{}, 42);
  Rng rng(7);
  double means[kNumWindows];
  for (int w = 0; w < kNumWindows; ++w) {
    double total = 0.0;
    for (int r = 0; r < 50; ++r) {
      total += pool.ObserveAvailability(static_cast<DeploymentWindow>(w),
                                        TaskType::kSentenceTranslation, &rng);
    }
    means[w] = total / 50.0;
  }
  EXPECT_GT(means[1], means[2]);  // early week > mid week
  EXPECT_GT(means[2], means[0]);  // mid week > weekend
}

TEST(WorkerPoolTest, ObservedAvailabilityTracksGroundTruth) {
  WorkerPool pool(WorkerPoolOptions{}, 43);
  Rng rng(8);
  for (int w = 0; w < kNumWindows; ++w) {
    const auto window = static_cast<DeploymentWindow>(w);
    double total = 0.0;
    const int runs = 100;
    for (int r = 0; r < runs; ++r) {
      total += pool.ObserveAvailability(window, TaskType::kTextCreation, &rng);
    }
    EXPECT_NEAR(total / runs, pool.TrueIntensity(window), 0.03);
  }
}

TEST(WorkerPoolTest, EstimateAvailabilityProducesUsableModel) {
  WorkerPool pool(WorkerPoolOptions{}, 44);
  Rng rng(9);
  auto model = pool.EstimateAvailability(DeploymentWindow::kEarlyWeek,
                                         TaskType::kSentenceTranslation,
                                         /*deployments=*/30, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ExpectedAvailability(),
              pool.TrueIntensity(DeploymentWindow::kEarlyWeek), 0.05);
  EXPECT_FALSE(pool.EstimateAvailability(DeploymentWindow::kEarlyWeek,
                                         TaskType::kSentenceTranslation, 0,
                                         &rng)
                   .ok());
}

TEST(WorkerPoolTest, SuitablePoolsDifferPerTaskType) {
  WorkerPool pool(WorkerPoolOptions{}, 45);
  // Creation requires US + Bachelor's: strictly harder filter than
  // translation's US/India.
  EXPECT_GT(pool.SuitableWorkerCount(TaskType::kSentenceTranslation),
            pool.SuitableWorkerCount(TaskType::kTextCreation));
  EXPECT_GT(pool.SuitableWorkerCount(TaskType::kTextCreation), 0u);
}

TEST(WorkerPoolTest, PresenceRecordsWithinWindow) {
  WorkerPool pool(WorkerPoolOptions{}, 46);
  Rng rng(10);
  const auto present = pool.SimulateWindow(DeploymentWindow::kWeekend,
                                           TaskType::kSentenceTranslation,
                                           &rng);
  EXPECT_FALSE(present.empty());
  for (const auto& record : present) {
    EXPECT_GE(record.arrival_hours, 0.0);
    EXPECT_LE(record.departure_hours, 72.0);
    EXPECT_LE(record.arrival_hours, record.departure_hours);
  }
}

TEST(EditModelTest, UnguidedProducesMoreEdits) {
  Rng rng(11);
  EditModelOptions options;
  double guided_total = 0.0, unguided_total = 0.0;
  const int runs = 4000;
  for (int i = 0; i < runs; ++i) {
    guided_total += SimulateEditing(SimColCro(), true, options, &rng).num_edits;
    unguided_total +=
        SimulateEditing(SimColCro(), false, options, &rng).num_edits;
  }
  // Paper: 3.45 vs 6.25 average edits.
  EXPECT_NEAR(guided_total / runs, options.guided_edit_rate, 0.15);
  EXPECT_NEAR(unguided_total / runs, options.unguided_edit_rate, 0.15);
}

TEST(EditModelTest, ConflictsOnlyInSimultaneousCollaborative) {
  Rng rng(12);
  EditModelOptions options;
  for (const core::StageSpec& stage : core::AllStageSpecs()) {
    int conflicts = 0;
    for (int i = 0; i < 300; ++i) {
      conflicts += SimulateEditing(stage, false, options, &rng).num_conflicts;
    }
    const bool concurrent_shared =
        stage.structure == core::Structure::kSimultaneous &&
        stage.organization == core::Organization::kCollaborative;
    if (concurrent_shared) {
      EXPECT_GT(conflicts, 0) << core::StageName(stage);
    } else {
      EXPECT_EQ(conflicts, 0) << core::StageName(stage);
    }
  }
}

TEST(EditModelTest, PenaltyBoundedAndMonotone) {
  Rng rng(13);
  EditModelOptions options;
  for (int i = 0; i < 1000; ++i) {
    const EditOutcome outcome =
        SimulateEditing(SimColCro(), false, options, &rng);
    EXPECT_GE(outcome.quality_penalty, 0.0);
    EXPECT_LE(outcome.quality_penalty, options.max_penalty);
    EXPECT_GE(outcome.num_edits, 1);
    EXPECT_LE(outcome.num_conflicts, outcome.num_edits);
  }
}

TEST(GroundTruthTest, Table6CoefficientsEmbeddedVerbatim) {
  const auto translation_seq =
      TrueProfile(TaskType::kSentenceTranslation, SeqIndCro());
  EXPECT_DOUBLE_EQ(translation_seq.quality.alpha, 0.09);
  EXPECT_DOUBLE_EQ(translation_seq.quality.beta, 0.85);
  EXPECT_DOUBLE_EQ(translation_seq.cost.alpha, 1.00);
  EXPECT_DOUBLE_EQ(translation_seq.cost.beta, 0.00);
  EXPECT_DOUBLE_EQ(translation_seq.latency.alpha, -0.98);
  EXPECT_DOUBLE_EQ(translation_seq.latency.beta, 1.40);

  const auto creation_sim = TrueProfile(TaskType::kTextCreation, SimColCro());
  EXPECT_DOUBLE_EQ(creation_sim.quality.alpha, 0.19);
  EXPECT_DOUBLE_EQ(creation_sim.quality.beta, 0.70);
  EXPECT_DOUBLE_EQ(creation_sim.latency.alpha, -1.38);
  EXPECT_DOUBLE_EQ(creation_sim.latency.beta, 1.81);
}

TEST(GroundTruthTest, AllStagesHaveSaneSurfaces) {
  for (TaskType type :
       {TaskType::kSentenceTranslation, TaskType::kTextCreation}) {
    for (const core::StageSpec& stage : core::AllStageSpecs()) {
      const auto profile = TrueProfile(type, stage);
      // Quality rises with availability, latency falls, cost rises.
      EXPECT_GT(profile.quality.alpha, 0.0) << core::StageName(stage);
      EXPECT_LT(profile.latency.alpha, 0.0) << core::StageName(stage);
      EXPECT_GT(profile.cost.alpha, 0.0) << core::StageName(stage);
      // Parameters stay within [0, 1] over the realistic availability range.
      for (double w : {0.6, 0.8, 1.0}) {
        const auto params = profile.EstimateParams(w);
        EXPECT_GE(params.quality, 0.0);
        EXPECT_LE(params.quality, 1.0);
        EXPECT_GE(params.latency, 0.0);
        EXPECT_LE(params.latency, 1.0);
      }
    }
  }
}

TEST(GroundTruthTest, HybridRaisesLowAvailabilityQuality) {
  const core::StageSpec crowd = core::ParseStageName("SIM-IND-CRO").value();
  const core::StageSpec hybrid = core::ParseStageName("SIM-IND-HYB").value();
  const auto crowd_profile =
      TrueProfile(TaskType::kSentenceTranslation, crowd);
  const auto hybrid_profile =
      TrueProfile(TaskType::kSentenceTranslation, hybrid);
  // The machine floor helps most when few workers are available.
  EXPECT_GT(hybrid_profile.quality.Eval(0.3), crowd_profile.quality.Eval(0.3));
}

TEST(ExpertTest, PanelScoresTrackTruth) {
  ExpertPanel panel(3, 0.04, 99);
  double total = 0.0;
  for (int i = 0; i < 500; ++i) total += panel.Score(0.8);
  EXPECT_NEAR(total / 500.0, 0.8, 0.01);
  EXPECT_EQ(panel.num_experts(), 3);
}

TEST(ExpertTest, AggregateScoreValidation) {
  ExpertPanel panel(2, 0.04, 100);
  EXPECT_FALSE(panel.AggregateScore({}).ok());
  auto score = panel.AggregateScore({0.7, 0.9});
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, 0.8, 0.15);
}

TEST(ExecutionTest, OutcomesFollowGroundTruthSurfaces) {
  WorkerPool pool(WorkerPoolOptions{}, 50);
  ExecutionSimulator simulator(&pool, ExecutionOptions{}, 51);
  const Hit hit = MakeHit("h", TaskType::kSentenceTranslation,
                          SampleTasks(TaskType::kSentenceTranslation));
  const auto truth = TrueProfile(TaskType::kSentenceTranslation, SeqIndCro());

  std::vector<double> qualities;
  for (int i = 0; i < 200; ++i) {
    const auto outcome =
        simulator.ExecuteAtAvailability(hit, SeqIndCro(), 0.8, true);
    qualities.push_back(outcome.observed.quality);
  }
  EXPECT_NEAR(stats::Mean(qualities).value(), truth.quality.Eval(0.8), 0.02);
}

TEST(ExecutionTest, EditWarDegradesUnguidedCollaborativeQuality) {
  WorkerPool pool(WorkerPoolOptions{}, 52);
  ExecutionSimulator simulator(&pool, ExecutionOptions{}, 53);
  const Hit hit = MakeHit("h", TaskType::kTextCreation,
                          SampleTasks(TaskType::kTextCreation));
  double guided = 0.0, unguided = 0.0;
  const int runs = 300;
  for (int i = 0; i < runs; ++i) {
    guided +=
        simulator.ExecuteAtAvailability(hit, SimColCro(), 0.8, true)
            .observed.quality;
    unguided +=
        simulator.ExecuteAtAvailability(hit, SimColCro(), 0.8, false)
            .observed.quality;
  }
  EXPECT_GT(guided / runs, unguided / runs + 0.02);
}

TEST(ExecutionTest, CollectObservationsSpansWindows) {
  WorkerPool pool(WorkerPoolOptions{}, 54);
  ExecutionSimulator simulator(&pool, ExecutionOptions{}, 55);
  const Hit hit = MakeHit("h", TaskType::kSentenceTranslation,
                          SampleTasks(TaskType::kSentenceTranslation));
  const auto observations = simulator.CollectObservations(hit, SeqIndCro(), 5);
  EXPECT_EQ(observations.size(), 15u);  // 5 repetitions x 3 windows
  // Availability varies across observations (different windows).
  double lo = 1.0, hi = 0.0;
  for (const auto& obs : observations) {
    lo = std::min(lo, obs.availability);
    hi = std::max(hi, obs.availability);
  }
  EXPECT_GT(hi - lo, 0.05);
}

TEST(ExecutionTest, FittedModelsRecoverTable6) {
  // The full Figure 12 / Table 6 pipeline: simulate deployments, fit linear
  // models, check the truth lies within the 99% CI (90% in the paper; wider
  // here because this is a fixed-seed unit test).
  WorkerPool pool(WorkerPoolOptions{}, 56);
  ExecutionSimulator simulator(&pool, ExecutionOptions{}, 57);
  const Hit hit = MakeHit("h", TaskType::kSentenceTranslation,
                          SampleTasks(TaskType::kSentenceTranslation));
  const auto observations =
      simulator.CollectObservations(hit, SeqIndCro(), 40);
  auto fitted = core::FitProfile(observations);
  ASSERT_TRUE(fitted.ok());
  const auto truth = TrueProfile(TaskType::kSentenceTranslation, SeqIndCro());
  EXPECT_NEAR(fitted->profile.quality.alpha, truth.quality.alpha, 0.08);
  EXPECT_NEAR(fitted->profile.cost.alpha, truth.cost.alpha, 0.08);
  EXPECT_NEAR(fitted->profile.latency.alpha, truth.latency.alpha, 0.12);
  EXPECT_TRUE(fitted->cost_fit.AlphaCiContains(truth.cost.alpha, 0.99));
}

}  // namespace
}  // namespace stratrec::platform
