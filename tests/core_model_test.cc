// Unit tests for the core data model: types, strategies, linear models,
// deployment requests, availability.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/availability.h"
#include "src/core/deployment.h"
#include "src/core/linear_model.h"
#include "src/core/strategy.h"
#include "src/core/types.h"

namespace stratrec::core {
namespace {

TEST(ParamVectorTest, SquaredDistanceMatchesEquation3) {
  const ParamVector d{0.8, 0.2, 0.28};
  const ParamVector d_prime{0.75, 0.58, 0.28};
  EXPECT_NEAR(d.SquaredDistanceTo(d_prime), 0.05 * 0.05 + 0.38 * 0.38, 1e-12);
  EXPECT_DOUBLE_EQ(d.SquaredDistanceTo(d), 0.0);
}

TEST(ParamVectorTest, SatisfiesSemantics) {
  const ParamVector d{0.7, 0.83, 0.28};
  EXPECT_TRUE(Satisfies({0.75, 0.33, 0.28}, d));   // meets all
  EXPECT_FALSE(Satisfies({0.65, 0.33, 0.28}, d));  // quality too low
  EXPECT_FALSE(Satisfies({0.75, 0.90, 0.28}, d));  // too expensive
  EXPECT_FALSE(Satisfies({0.75, 0.33, 0.30}, d));  // too slow
  // Boundary equality counts as satisfying.
  EXPECT_TRUE(Satisfies({0.7, 0.83, 0.28}, d));
}

TEST(ParamVectorTest, RelaxSpaceRoundTrip) {
  const ParamVector p{0.8, 0.5, 0.14};
  const geo::Point3 r = ToRelaxSpace(p);
  EXPECT_DOUBLE_EQ(r.x, 0.2);  // 1 - quality
  EXPECT_DOUBLE_EQ(r.y, 0.5);
  EXPECT_DOUBLE_EQ(r.z, 0.14);
  const ParamVector back = FromRelaxSpace(r);
  EXPECT_DOUBLE_EQ(back.quality, p.quality);
  EXPECT_DOUBLE_EQ(back.cost, p.cost);
  EXPECT_DOUBLE_EQ(back.latency, p.latency);
}

TEST(ParamVectorTest, RelaxSpaceDominanceIsSatisfaction) {
  // s satisfies d  <=>  relax(s) component-wise <= relax(d).
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const ParamVector s{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const ParamVector d{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_EQ(Satisfies(s, d, /*eps=*/0.0),
              ToRelaxSpace(s).DominatedBy(ToRelaxSpace(d)));
  }
}

TEST(ParamVectorTest, ToStringMentionsAllParams) {
  const std::string s = ParamVector{0.1, 0.2, 0.3}.ToString();
  EXPECT_NE(s.find("q=0.1"), std::string::npos);
  EXPECT_NE(s.find("c=0.2"), std::string::npos);
  EXPECT_NE(s.find("l=0.3"), std::string::npos);
}

TEST(StrategyTest, StageNamesRoundTrip) {
  for (const StageSpec& spec : AllStageSpecs()) {
    auto parsed = ParseStageName(StageName(spec));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, spec);
  }
}

TEST(StrategyTest, ParseIsCaseInsensitive) {
  auto parsed = ParseStageName("sim-col-hyb");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->structure, Structure::kSimultaneous);
  EXPECT_EQ(parsed->organization, Organization::kCollaborative);
  EXPECT_EQ(parsed->style, WorkStyle::kHybrid);
}

TEST(StrategyTest, ParseRejectsMalformedNames) {
  EXPECT_FALSE(ParseStageName("").ok());
  EXPECT_FALSE(ParseStageName("SEQINDCRO").ok());
  EXPECT_FALSE(ParseStageName("XXX-IND-CRO").ok());
  EXPECT_FALSE(ParseStageName("SEQ-XXX-CRO").ok());
  EXPECT_FALSE(ParseStageName("SEQ-IND-XXX").ok());
  EXPECT_FALSE(ParseStageName("SEQ_IND_CRO").ok());
}

TEST(StrategyTest, AllStageSpecsAreDistinct) {
  const auto specs = AllStageSpecs();
  EXPECT_EQ(specs.size(), 8u);
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_FALSE(specs[i] == specs[j]);
    }
  }
}

TEST(StrategyTest, DescribeJoinsStages) {
  const Strategy wf("wf", {ParseStageName("SEQ-IND-CRO").value(),
                           ParseStageName("SIM-COL-HYB").value()});
  EXPECT_EQ(wf.Describe(), "SEQ-IND-CRO>SIM-COL-HYB");
  EXPECT_EQ(wf.num_stages(), 2u);
}

TEST(StrategyTest, CountWorkflowsIsPowerOfEight) {
  EXPECT_EQ(CountWorkflows(0).value(), 1u);
  EXPECT_EQ(CountWorkflows(1).value(), 8u);
  // The paper's example: x = 10 stages -> 8^10 = 1,073,741,824 strategies.
  EXPECT_EQ(CountWorkflows(10).value(), 1073741824u);
  EXPECT_FALSE(CountWorkflows(-1).ok());
  EXPECT_FALSE(CountWorkflows(22).ok());  // overflows uint64
}

TEST(StrategyTest, EnumerateWorkflowsMaterializesAll) {
  auto workflows = EnumerateWorkflows(2);
  ASSERT_TRUE(workflows.ok());
  EXPECT_EQ(workflows->size(), 64u);
  // All distinct.
  for (size_t i = 0; i < workflows->size(); ++i) {
    for (size_t j = i + 1; j < workflows->size(); ++j) {
      EXPECT_FALSE((*workflows)[i].stages() == (*workflows)[j].stages());
    }
  }
  // Cap guard.
  EXPECT_FALSE(EnumerateWorkflows(10, /*max_results=*/1000).ok());
}

TEST(LinearModelTest, EvalAndInvert) {
  const LinearModel latency{-0.98, 1.40};  // Table 6 translation latency
  EXPECT_NEAR(latency.Eval(1.0), 0.42, 1e-12);
  auto w = latency.SolveForWorkforce(0.42);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 1.0, 1e-12);
  EXPECT_NEAR(latency.EvalClamped(0.0), 1.0, 1e-12);  // clamped from 1.40
}

TEST(LinearModelTest, ConstantModelCannotInvert) {
  const LinearModel constant{0.0, 0.5};
  EXPECT_FALSE(constant.SolveForWorkforce(0.7).ok());
  EXPECT_DOUBLE_EQ(constant.Eval(0.3), 0.5);
}

TEST(LinearModelTest, ProfileEstimatesClampedParams) {
  StrategyProfile profile;
  profile.quality = {0.09, 0.85};
  profile.cost = {1.0, 0.0};
  profile.latency = {-0.98, 1.40};
  const ParamVector at_08 = profile.EstimateParams(0.8);
  EXPECT_NEAR(at_08.quality, 0.922, 1e-12);
  EXPECT_NEAR(at_08.cost, 0.8, 1e-12);
  EXPECT_NEAR(at_08.latency, 0.616, 1e-12);
  // At w = 0 latency would be 1.40 -> clamped to 1.
  EXPECT_DOUBLE_EQ(profile.EstimateParams(0.0).latency, 1.0);
}

TEST(LinearModelTest, FitProfileRecoversGroundTruth) {
  Rng rng(42);
  StrategyProfile truth;
  truth.quality = {0.10, 0.80};
  truth.cost = {1.0, 0.0};
  truth.latency = {-1.56, 2.04};
  std::vector<Observation> observations;
  for (int i = 0; i < 40; ++i) {
    const double w = rng.Uniform(0.6, 1.0);
    Observation obs;
    obs.availability = w;
    obs.outcome.quality = truth.quality.Eval(w) + rng.Normal(0, 0.01);
    obs.outcome.cost = truth.cost.Eval(w) + rng.Normal(0, 0.01);
    obs.outcome.latency = truth.latency.Eval(w) + rng.Normal(0, 0.01);
    observations.push_back(obs);
  }
  auto fitted = FitProfile(observations);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->profile.quality.alpha, 0.10, 0.05);
  EXPECT_NEAR(fitted->profile.cost.alpha, 1.0, 0.05);
  EXPECT_NEAR(fitted->profile.latency.alpha, -1.56, 0.08);
  // CI containment is itself probabilistic (the nominal coverage is tested
  // statistically in stats_test.cc); at 99% confidence this fixed seed must
  // contain the truth.
  EXPECT_TRUE(fitted->quality_fit.AlphaCiContains(0.10, 0.99));
  EXPECT_TRUE(fitted->latency_fit.BetaCiContains(2.04, 0.99));
}

TEST(LinearModelTest, FitProfileErrorsOnTooFewObservations) {
  EXPECT_FALSE(FitProfile({}).ok());
  EXPECT_FALSE(FitProfile({Observation{0.5, {0.5, 0.5, 0.5}}}).ok());
  // Two observations at the same availability: degenerate.
  EXPECT_FALSE(FitProfile({Observation{0.5, {0.5, 0.5, 0.5}},
                           Observation{0.5, {0.6, 0.6, 0.6}}})
                   .ok());
}

TEST(DeploymentTest, ValidateRequest) {
  DeploymentRequest ok{"d", {0.5, 0.5, 0.5}, 3};
  EXPECT_TRUE(ValidateRequest(ok).ok());
  DeploymentRequest bad_k{"d", {0.5, 0.5, 0.5}, 0};
  EXPECT_FALSE(ValidateRequest(bad_k).ok());
  DeploymentRequest bad_q{"d", {1.5, 0.5, 0.5}, 1};
  EXPECT_FALSE(ValidateRequest(bad_q).ok());
  DeploymentRequest bad_c{"d", {0.5, -0.1, 0.5}, 1};
  EXPECT_FALSE(ValidateRequest(bad_c).ok());
}

TEST(DeploymentTest, PayoffIsBudget) {
  DeploymentRequest request{"d", {0.5, 0.83, 0.5}, 3};
  EXPECT_DOUBLE_EQ(request.Payoff(), 0.83);
}

TEST(DeploymentTest, SuitableStrategiesFiltersInOrder) {
  const std::vector<ParamVector> strategies = {
      {0.50, 0.25, 0.28}, {0.75, 0.33, 0.28}, {0.80, 0.50, 0.14},
      {0.88, 0.58, 0.14}};
  const auto suitable = SuitableStrategies(strategies, {0.7, 0.83, 0.28});
  EXPECT_EQ(suitable, (std::vector<size_t>{1, 2, 3}));
  EXPECT_TRUE(SuitableStrategies(strategies, {0.99, 0.1, 0.01}).empty());
}

TEST(AvailabilityTest, PaperExampleExpectation) {
  auto model = AvailabilityModel::FromPmf({{0.7, 0.5}, {0.9, 0.5}});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ExpectedAvailability(), 0.8, 1e-12);
}

TEST(AvailabilityTest, FromSamples) {
  auto model = AvailabilityModel::FromSamples({0.6, 0.8, 0.7, 0.9});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ExpectedAvailability(), 0.75, 1e-12);
  EXPECT_GT(model->Variance(), 0.0);
}

TEST(AvailabilityTest, RejectsOutOfRangeFractions) {
  EXPECT_FALSE(AvailabilityModel::FromPmf({{1.5, 1.0}}).ok());
  EXPECT_FALSE(AvailabilityModel::FromSamples({0.5, -0.1}).ok());
  EXPECT_FALSE(AvailabilityModel::FromSamples({}).ok());
}

}  // namespace
}  // namespace stratrec::core
