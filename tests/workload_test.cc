// Unit tests for the Section 5.2 synthetic workload generators.
#include <gtest/gtest.h>

#include "src/stats/descriptive.h"
#include "src/workload/generators.h"

namespace stratrec::workload {
namespace {

TEST(GeneratorTest, UniformDimsStayInConfiguredRange) {
  Generator generator({}, 1);
  const auto params = generator.StrategyParams(2000);
  for (const auto& p : params) {
    for (double v : {p.quality, p.cost, p.latency}) {
      EXPECT_GE(v, 0.5);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GeneratorTest, NormalDimsMatchPaperMoments) {
  GeneratorOptions options;
  options.distribution = DimDistribution::kNormal;
  Generator generator(options, 2);
  std::vector<double> draws;
  for (const auto& p : generator.StrategyParams(3000)) {
    draws.push_back(p.quality);
  }
  EXPECT_NEAR(stats::Mean(draws).value(), 0.75, 0.01);
  EXPECT_NEAR(stats::StdDev(draws).value(), 0.10, 0.01);
}

TEST(GeneratorTest, RequestsInPaperRange) {
  Generator generator({}, 3);
  const auto requests = generator.Requests(500, /*k=*/10);
  EXPECT_EQ(requests.size(), 500u);
  for (const auto& r : requests) {
    EXPECT_EQ(r.k, 10);
    EXPECT_FALSE(r.id.empty());
    for (double v : {r.thresholds.quality, r.thresholds.cost,
                     r.thresholds.latency}) {
      EXPECT_GE(v, 0.625);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GeneratorTest, ProfilesHaveExpectedSlopeSigns) {
  Generator generator({}, 4);
  for (const auto& profile : generator.Profiles(500)) {
    EXPECT_GE(profile.quality.alpha, 0.5);
    EXPECT_LE(profile.quality.alpha, 1.0);
    EXPECT_GE(profile.cost.alpha, 0.5);
    EXPECT_LE(profile.cost.alpha, 1.0);
    EXPECT_LE(profile.latency.alpha, -0.5);
    EXPECT_GE(profile.latency.alpha, -1.0);
    // Parameter at full availability equals the sampled dimension: in range.
    const auto at_full = profile.EstimateParams(1.0);
    EXPECT_GE(at_full.quality, 0.5 - 1e-9);
    EXPECT_LE(at_full.quality, 1.0 + 1e-9);
  }
}

TEST(GeneratorTest, DeterministicAcrossInstances) {
  Generator a({}, 42), b({}, 42);
  const auto pa = a.StrategyParams(50);
  const auto pb = b.StrategyParams(50);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].quality, pb[i].quality);
    EXPECT_EQ(pa[i].cost, pb[i].cost);
    EXPECT_EQ(pa[i].latency, pb[i].latency);
  }
  Generator c({}, 43);
  const auto pc = c.StrategyParams(50);
  int identical = 0;
  for (size_t i = 0; i < pa.size(); ++i) {
    identical += pa[i].quality == pc[i].quality ? 1 : 0;
  }
  EXPECT_LT(identical, 5);
}

TEST(GeneratorTest, DistributionNames) {
  EXPECT_STREQ(DimDistributionName(DimDistribution::kUniform), "uniform");
  EXPECT_STREQ(DimDistributionName(DimDistribution::kNormal), "normal");
}

}  // namespace
}  // namespace stratrec::workload
