// FaultPlan determinism pins: the same seed must produce the same
// injected-fault schedule (per-visit decisions AND the order-independent
// schedule digest), sites must honor their rates, unregistered sites must
// stay no-ops, and the process-global install/clear pair must behave. A
// golden digest pins the hash function itself — if the schedule ever
// changes shape, the chaos bench's stamped digests silently stop being
// comparable across versions, and this test is what catches it.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"

namespace stratrec {
namespace {

fault::FaultConfig TwoSites(uint64_t seed) {
  fault::FaultConfig config;
  config.seed = seed;
  config.sites.emplace_back("site.a", fault::SiteSpec{0.5, 0.0});
  config.sites.emplace_back("site.b", fault::SiteSpec{0.25, 1.5});
  return config;
}

std::vector<bool> Schedule(fault::FaultPlan* plan, std::string_view site,
                           size_t visits) {
  std::vector<bool> injected;
  injected.reserve(visits);
  for (size_t i = 0; i < visits; ++i) {
    injected.push_back(plan->Visit(site).inject);
  }
  return injected;
}

TEST(FaultPlan, SameSeedSameSchedule) {
  fault::FaultPlan first(TwoSites(0x5EED));
  fault::FaultPlan second(TwoSites(0x5EED));
  EXPECT_EQ(Schedule(&first, "site.a", 500), Schedule(&second, "site.a", 500));
  EXPECT_EQ(Schedule(&first, "site.b", 500), Schedule(&second, "site.b", 500));
  EXPECT_EQ(first.Injected("site.a"), second.Injected("site.a"));
  EXPECT_EQ(first.Injected("site.b"), second.Injected("site.b"));
  EXPECT_EQ(first.ScheduleDigest(), second.ScheduleDigest());
  EXPECT_NE(first.ScheduleDigest(), 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  fault::FaultPlan first(TwoSites(1));
  fault::FaultPlan second(TwoSites(2));
  Schedule(&first, "site.a", 500);
  Schedule(&second, "site.a", 500);
  EXPECT_NE(first.ScheduleDigest(), second.ScheduleDigest());
}

TEST(FaultPlan, RatesAreHonored) {
  fault::FaultConfig config;
  config.seed = 7;
  config.sites.emplace_back("never", fault::SiteSpec{0.0, 0.0});
  config.sites.emplace_back("always", fault::SiteSpec{1.0, 2.5});
  config.sites.emplace_back("quarter", fault::SiteSpec{0.25, 0.0});
  fault::FaultPlan plan(config);

  for (size_t i = 0; i < 200; ++i) {
    EXPECT_FALSE(plan.Visit("never").inject);
    const fault::FaultDecision dead = plan.Visit("always");
    EXPECT_TRUE(dead.inject);
    EXPECT_DOUBLE_EQ(dead.delay_ms, 2.5);
    EXPECT_EQ(dead.visit, i);
  }
  EXPECT_EQ(plan.Injected("never"), 0u);
  EXPECT_EQ(plan.Injected("always"), 200u);
  EXPECT_EQ(plan.Visits("never"), 200u);

  size_t hits = 0;
  for (size_t i = 0; i < 2000; ++i) {
    if (plan.Visit("quarter").inject) ++hits;
  }
  EXPECT_GT(hits, 2000 * 0.15);
  EXPECT_LT(hits, 2000 * 0.35);
}

TEST(FaultPlan, UnregisteredSitesAreNoOps) {
  fault::FaultPlan plan(TwoSites(3));
  EXPECT_FALSE(plan.HasSite("site.c"));
  EXPECT_FALSE(plan.Visit("site.c").inject);
  EXPECT_EQ(plan.Visits("site.c"), 0u);
  EXPECT_EQ(plan.Injected("site.c"), 0u);

  fault::FaultPlan empty;
  EXPECT_FALSE(empty.enabled());
  EXPECT_FALSE(empty.Visit("anything").inject);
  EXPECT_EQ(empty.ScheduleDigest(), 0u);
}

// The digest is an XOR fold over injected (site, visit) pairs: any visit
// interleaving with the same per-site visit counts agrees. This is the
// property that lets concurrent serving traffic stamp a comparable digest.
TEST(FaultPlan, DigestIsOrderAndThreadIndependent) {
  fault::FaultPlan sequential(TwoSites(0xD16));
  Schedule(&sequential, "site.a", 400);
  Schedule(&sequential, "site.b", 400);

  fault::FaultPlan interleaved(TwoSites(0xD16));
  for (size_t i = 0; i < 400; ++i) {
    interleaved.Visit("site.b");
    interleaved.Visit("site.a");
  }
  EXPECT_EQ(sequential.ScheduleDigest(), interleaved.ScheduleDigest());

  fault::FaultPlan concurrent(TwoSites(0xD16));
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&concurrent]() {
      for (size_t i = 0; i < 100; ++i) {
        concurrent.Visit("site.a");
        concurrent.Visit("site.b");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(sequential.ScheduleDigest(), concurrent.ScheduleDigest());
  EXPECT_EQ(sequential.TotalInjected(), concurrent.TotalInjected());
}

// Golden pin of the hash function: seed 0x5EED, site "pin" at rate 0.5, 64
// visits. If this changes, stamped digests from older chaos runs are no
// longer comparable — bump deliberately, never silently.
TEST(FaultPlan, GoldenScheduleDigest) {
  fault::FaultConfig config;
  config.seed = 0x5EED;
  config.sites.emplace_back("pin", fault::SiteSpec{0.5, 0.0});
  fault::FaultPlan plan(config);
  uint64_t mask = 0;
  for (size_t i = 0; i < 64; ++i) {
    if (plan.Visit("pin").inject) mask |= uint64_t{1} << i;
  }
  EXPECT_EQ(mask, 0xf591d0a87aa56458ull);
  EXPECT_EQ(plan.ScheduleDigest(), 0x59524d3dc409910eull);
}

TEST(FaultGlobal, InstallReplacesAndClearRemoves) {
  fault::ClearGlobalFaultPlan();
  EXPECT_EQ(fault::GlobalFaultPlan(), nullptr);

  auto plan = fault::InstallGlobalFaultPlan(TwoSites(9));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(fault::GlobalFaultPlan().get(), plan.get());

  auto replacement = fault::InstallGlobalFaultPlan(TwoSites(10));
  EXPECT_EQ(fault::GlobalFaultPlan().get(), replacement.get());
  // The displaced plan stays valid for whoever kept the handle.
  EXPECT_TRUE(plan->enabled());

  fault::ClearGlobalFaultPlan();
  EXPECT_EQ(fault::GlobalFaultPlan(), nullptr);
}

TEST(FaultSites, ReplicaSiteNamesAreStable) {
  EXPECT_EQ(fault::ReplicaSiteName(0, 0), "router.shard.0.replica.0");
  EXPECT_EQ(fault::ReplicaSiteName(3, 12), "router.shard.3.replica.12");
}

}  // namespace
}  // namespace stratrec
