// Unit + property tests for src/geometry: Point3/Rect3, KSmallestTracker,
// and the R-tree (validated against brute-force scans).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/k_smallest.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/rtree.h"

namespace stratrec::geo {
namespace {

TEST(Point3Test, IndexingAndDominance) {
  Point3 p{0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(p[0], 0.1);
  EXPECT_DOUBLE_EQ(p[1], 0.2);
  EXPECT_DOUBLE_EQ(p[2], 0.3);
  p[2] = 0.4;
  EXPECT_DOUBLE_EQ(p.z, 0.4);

  EXPECT_TRUE((Point3{0, 0, 0}).DominatedBy({1, 1, 1}));
  EXPECT_TRUE((Point3{1, 1, 1}).DominatedBy({1, 1, 1}));
  EXPECT_FALSE((Point3{1, 0, 0}).DominatedBy({0.5, 1, 1}));
}

TEST(Point3Test, Distances) {
  const Point3 a{0, 0, 0}, b{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 3.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistanceTo(b), 9.0);
}

TEST(Rect3Test, EmptyAndFromPoint) {
  EXPECT_TRUE(Rect3::Empty().IsEmpty());
  const Rect3 r = Rect3::FromPoint({0.5, 0.5, 0.5});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({0.5, 0.5, 0.5}));
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
}

TEST(Rect3Test, ContainsAndIntersects) {
  const Rect3 box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(box.Contains({0, 1, 0.5}));
  EXPECT_FALSE(box.Contains({1.1, 0.5, 0.5}));
  EXPECT_TRUE(box.Intersects({{0.5, 0.5, 0.5}, {2, 2, 2}}));
  EXPECT_TRUE(box.Intersects({{1, 1, 1}, {2, 2, 2}}));  // touching corner
  EXPECT_FALSE(box.Intersects({{1.01, 0, 0}, {2, 1, 1}}));
  EXPECT_FALSE(box.Intersects(Rect3::Empty()));
  EXPECT_TRUE(box.ContainsRect({{0.2, 0.2, 0.2}, {0.8, 0.8, 0.8}}));
  EXPECT_FALSE(box.ContainsRect({{0.2, 0.2, 0.2}, {1.8, 0.8, 0.8}}));
}

TEST(Rect3Test, ExtendAndUnion) {
  Rect3 box = Rect3::Empty();
  box.Extend({0.5, 0.5, 0.5});
  box.Extend({1.0, 0.0, 0.25});
  EXPECT_TRUE(box.Contains({0.75, 0.25, 0.4}));
  EXPECT_DOUBLE_EQ(box.Volume(), 0.5 * 0.5 * 0.25);
  EXPECT_DOUBLE_EQ(box.Margin(), 0.5 + 0.5 + 0.25);

  const Rect3 other{{2, 2, 2}, {3, 3, 3}};
  const Rect3 u = Union(box, other);
  EXPECT_TRUE(u.ContainsRect(box));
  EXPECT_TRUE(u.ContainsRect(other));
  EXPECT_GT(box.Enlargement(other), 0.0);
  EXPECT_DOUBLE_EQ(box.Enlargement(box), 0.0);
}

TEST(KSmallest, TracksKthSmallest) {
  KSmallestTracker tracker(3);
  EXPECT_FALSE(tracker.Full());
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) tracker.Push(v);
  ASSERT_TRUE(tracker.Full());
  EXPECT_DOUBLE_EQ(tracker.KthSmallest(), 3.0);
  EXPECT_EQ(tracker.SortedValues(), (std::vector<double>{1.0, 2.0, 3.0}));
  tracker.Push(0.5);
  EXPECT_DOUBLE_EQ(tracker.KthSmallest(), 2.0);
}

TEST(KSmallest, DuplicatesRetained) {
  KSmallestTracker tracker(2);
  tracker.Push(1.0);
  tracker.Push(1.0);
  tracker.Push(1.0);
  EXPECT_DOUBLE_EQ(tracker.KthSmallest(), 1.0);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.Query({{0, 0, 0}, {1, 1, 1}}).empty());
  EXPECT_EQ(tree.Count({{0, 0, 0}, {1, 1, 1}}), 0u);
}

TEST(RTreeTest, SingleInsertQuery) {
  RTree tree;
  tree.Insert({0.5, 0.5, 0.5}, 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  auto ids = tree.Query({{0, 0, 0}, {1, 1, 1}});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 7);
  EXPECT_TRUE(tree.Query({{0.6, 0, 0}, {1, 1, 1}}).empty());
}

TEST(RTreeTest, BoundaryInclusive) {
  RTree tree;
  tree.Insert({0.5, 0.5, 0.5}, 1);
  EXPECT_EQ(tree.Count({{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}), 1u);
}

class RTreePropertyTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RTreePropertyTest, MatchesBruteForce) {
  const int n = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);

  RTree tree;
  std::vector<Point3> points;
  for (int i = 0; i < n; ++i) {
    const Point3 p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    points.push_back(p);
    tree.Insert(p, i);
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));

  for (int trial = 0; trial < 20; ++trial) {
    Point3 a{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Point3 b{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const Rect3 box{{std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)},
                    {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)}};
    std::vector<int64_t> expected;
    for (int i = 0; i < n; ++i) {
      if (box.Contains(points[i])) expected.push_back(i);
    }
    auto actual = tree.Query(box);
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(tree.Count(box), expected.size());
  }
}

TEST_P(RTreePropertyTest, StructuralInvariants) {
  const int n = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed ^ 0xabcdef);

  RTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert({rng.Uniform(), rng.Uniform(), rng.Uniform()}, i);
  }

  // Root subtree count equals total size; every node box is non-empty for a
  // non-empty tree; leaf depth equals height - 1.
  size_t root_count = 0;
  int max_depth = -1;
  int min_leaf_depth = 1 << 20;
  int max_leaf_depth = -1;
  tree.VisitNodes([&](const NodeSummary& node) {
    if (node.depth == 0) root_count = node.count;
    max_depth = std::max(max_depth, node.depth);
    if (node.is_leaf) {
      min_leaf_depth = std::min(min_leaf_depth, node.depth);
      max_leaf_depth = std::max(max_leaf_depth, node.depth);
    }
    if (n > 0) {
      EXPECT_FALSE(node.mbb.IsEmpty());
    }
  });
  EXPECT_EQ(root_count, static_cast<size_t>(n));
  if (n > 0) {
    EXPECT_EQ(min_leaf_depth, max_leaf_depth);  // balanced
    EXPECT_EQ(max_leaf_depth, tree.Height() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreePropertyTest,
    testing::Combine(testing::Values(1, 5, 17, 64, 200, 1000),
                     testing::Values(1u, 2u, 3u)));

TEST(RTreeTest, DuplicatePointsAllReported) {
  RTree tree;
  for (int i = 0; i < 20; ++i) tree.Insert({0.5, 0.5, 0.5}, i);
  EXPECT_EQ(tree.Count({{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}), 20u);
  EXPECT_EQ(tree.Query({{0, 0, 0}, {1, 1, 1}}).size(), 20u);
}

TEST(RTreeTest, MoveSemantics) {
  RTree tree;
  tree.Insert({0.1, 0.2, 0.3}, 42);
  RTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1u);
  auto ids = moved.Query({{0, 0, 0}, {1, 1, 1}});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 42);
}

}  // namespace
}  // namespace stratrec::geo
