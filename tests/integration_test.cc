// Integration tests: the full StratRec pipeline (Aggregator + ADPaR) on the
// paper's worked example and on simulated-platform inputs, plus the AMT
// simulator's end-to-end studies.
#include <gtest/gtest.h>

#include "src/core/stratrec.h"
#include "src/platform/amt.h"
#include "src/stats/hypothesis.h"
#include "src/workload/generators.h"

namespace stratrec {
namespace {

using core::AggregationMode;
using core::AvailabilityModel;
using core::BatchAlgorithm;
using core::DeploymentRequest;
using core::ParamVector;
using core::StrategyProfile;
using core::StratRec;
using core::StratRecOptions;

// The quickstart's Example 1 setup: profiles whose parameters at W = 0.8
// equal Table 1's strategy values.
struct Example1 {
  std::vector<core::Strategy> strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  std::vector<StrategyProfile> profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  std::vector<DeploymentRequest> requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
};

TEST(StratRecIntegration, Example1EndToEnd) {
  Example1 example;
  auto stratrec = StratRec::Create(example.strategies, example.profiles);
  ASSERT_TRUE(stratrec.ok());

  auto availability = AvailabilityModel::FromPmf({{0.7, 0.5}, {0.9, 0.5}});
  ASSERT_TRUE(availability.ok());
  EXPECT_NEAR(availability->ExpectedAvailability(), 0.8, 1e-12);

  StratRecOptions options;
  options.batch.aggregation = AggregationMode::kMax;
  auto report = stratrec->ProcessBatch(example.requests, *availability,
                                       options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Strategy parameters at W = 0.8 reproduce Table 1.
  const auto& params = report->aggregator.strategy_params;
  ASSERT_EQ(params.size(), 4u);
  EXPECT_NEAR(params[0].quality, 0.50, 1e-9);
  EXPECT_NEAR(params[1].cost, 0.33, 1e-9);
  EXPECT_NEAR(params[2].latency, 0.14, 1e-9);
  EXPECT_NEAR(params[3].quality, 0.88, 1e-9);

  // d3 is served with {s2, s3, s4} (Section 2.2).
  const auto& outcomes = report->aggregator.batch.outcomes;
  EXPECT_FALSE(outcomes[0].satisfied);
  EXPECT_FALSE(outcomes[1].satisfied);
  ASSERT_TRUE(outcomes[2].satisfied);
  std::vector<size_t> served = outcomes[2].strategies;
  std::sort(served.begin(), served.end());
  EXPECT_EQ(served, (std::vector<size_t>{1, 2, 3}));

  // d1 and d2 receive ADPaR alternatives.
  ASSERT_EQ(report->alternatives.size(), 2u);
  const auto& alt1 = report->alternatives[0];
  EXPECT_EQ(alt1.request_index, 0u);
  EXPECT_NEAR(alt1.result.alternative.quality, 0.4, 1e-9);
  EXPECT_NEAR(alt1.result.alternative.cost, 0.5, 1e-9);
  EXPECT_NEAR(alt1.result.alternative.latency, 0.28, 1e-9);

  const auto& alt2 = report->alternatives[1];
  EXPECT_EQ(alt2.request_index, 1u);
  EXPECT_NEAR(alt2.result.alternative.quality, 0.75, 1e-9);
  EXPECT_NEAR(alt2.result.alternative.cost, 0.58, 1e-9);
  EXPECT_TRUE(report->adpar_failures.empty());
}

TEST(StratRecIntegration, AlternativesDisabled) {
  Example1 example;
  auto stratrec = StratRec::Create(example.strategies, example.profiles);
  ASSERT_TRUE(stratrec.ok());
  StratRecOptions options;
  options.batch.aggregation = AggregationMode::kMax;
  options.recommend_alternatives = false;
  auto report =
      stratrec->ProcessBatchAtAvailability(example.requests, 0.8, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->alternatives.empty());
  EXPECT_EQ(report->aggregator.batch.unsatisfied.size(), 2u);
}

TEST(StratRecIntegration, AdparFailureWhenKExceedsCatalog) {
  Example1 example;
  auto stratrec = StratRec::Create(example.strategies, example.profiles);
  ASSERT_TRUE(stratrec.ok());
  std::vector<DeploymentRequest> requests = {{"d", {0.99, 0.01, 0.01}, 9}};
  auto report = stratrec->ProcessBatchAtAvailability(requests, 0.8);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->alternatives.empty());
  EXPECT_EQ(report->adpar_failures, (std::vector<size_t>{0}));
}

TEST(StratRecIntegration, CreateValidatesAlignment) {
  Example1 example;
  example.profiles.pop_back();
  EXPECT_FALSE(StratRec::Create(example.strategies, example.profiles).ok());
  EXPECT_FALSE(StratRec::Create({}, {}).ok());
}

TEST(StratRecIntegration, RejectsOutOfRangeAvailability) {
  Example1 example;
  auto stratrec = StratRec::Create(example.strategies, example.profiles);
  ASSERT_TRUE(stratrec.ok());
  EXPECT_FALSE(
      stratrec->ProcessBatchAtAvailability(example.requests, 1.5).ok());
  EXPECT_FALSE(
      stratrec->ProcessBatchAtAvailability(example.requests, -0.1).ok());
}

TEST(StratRecIntegration, EveryUnsatisfiedRequestGetsAnAnswer) {
  // On random synthetic batches, every request is either served or receives
  // an ADPaR alternative (or an explicit failure when k > |S|).
  workload::Generator generator({}, 2024);
  const auto profiles = generator.Profiles(12);
  std::vector<core::Strategy> strategies;
  for (size_t j = 0; j < profiles.size(); ++j) {
    strategies.emplace_back("s" + std::to_string(j),
                            core::AllStageSpecs()[j % 8]);
  }
  auto stratrec = StratRec::Create(strategies, profiles);
  ASSERT_TRUE(stratrec.ok());
  const auto requests = generator.Requests(20, /*k=*/3);
  auto report = stratrec->ProcessBatchAtAvailability(requests, 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->aggregator.batch.unsatisfied.size(),
            report->alternatives.size() + report->adpar_failures.size());
  for (const auto& alt : report->alternatives) {
    EXPECT_EQ(alt.result.strategies.size(), 3u);
    // The alternative covers its strategies at the estimated parameters.
    for (size_t j : alt.result.strategies) {
      EXPECT_TRUE(core::Satisfies(report->aggregator.strategy_params[j],
                                  alt.result.alternative));
    }
  }
}

TEST(AmtIntegration, AvailabilityStudyShowsWindowEffect) {
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, 4242);
  const auto cells =
      amt.RunAvailabilityStudy(platform::TaskType::kSentenceTranslation);
  ASSERT_EQ(cells.size(), 6u);  // 2 strategies x 3 windows
  // Within each strategy block, early week beats weekend.
  for (size_t base : {0u, 3u}) {
    const double weekend = cells[base + 0].mean;
    const double early = cells[base + 1].mean;
    EXPECT_GT(early, weekend);
  }
}

TEST(AmtIntegration, BuildStratRecFitsAllEightStages) {
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, 777);
  auto stratrec = amt.BuildStratRec(platform::TaskType::kTextCreation);
  ASSERT_TRUE(stratrec.ok()) << stratrec.status().ToString();
  EXPECT_EQ(stratrec->aggregator().strategies().size(), 8u);
}

TEST(AmtIntegration, MirroredStudyFavorsStratRec) {
  // Figure 13's headline: guided deployments achieve higher quality and
  // lower latency with statistical significance, and fewer edits.
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, 31337);
  const core::ParamVector thresholds{0.7, 1.0, 1.0};
  auto study = amt.RunMirroredStudy(platform::TaskType::kSentenceTranslation,
                                    /*num_tasks=*/30, thresholds);
  ASSERT_TRUE(study.ok()) << study.status().ToString();

  auto quality = stats::PairedTTest(study->quality_with,
                                    study->quality_without);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->mean_difference, 0.0);
  EXPECT_TRUE(quality->Significant(0.05));

  auto edits = stats::PairedTTest(study->edits_with, study->edits_without);
  ASSERT_TRUE(edits.ok());
  EXPECT_LT(edits->mean_difference, 0.0);  // guided edits fewer
  EXPECT_TRUE(edits->Significant(0.05));
}

}  // namespace
}  // namespace stratrec
