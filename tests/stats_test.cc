// Unit tests for src/stats: descriptive statistics, Student-t, linear
// regression with confidence intervals, hypothesis tests, empirical PMFs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/stats/descriptive.h"
#include "src/stats/empirical.h"
#include "src/stats/hypothesis.h"
#include "src/stats/linear_regression.h"
#include "src/stats/student_t.h"

namespace stratrec::stats {
namespace {

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs).value(), 5.0);
  EXPECT_NEAR(Variance(xs).value(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs).value(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(StdError(xs).value(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

TEST(Descriptive, EmptyAndSmallSamplesError) {
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(Variance({1.0}).ok());
  EXPECT_FALSE(Median({}).ok());
  EXPECT_FALSE(Min({}).ok());
  EXPECT_FALSE(Max({}).ok());
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}).value(), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25).value(), 1.0);
  EXPECT_FALSE(Quantile(xs, 1.5).ok());
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}).value(), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}).value(), 3.0);
}

TEST(Descriptive, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys).value(), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, zs).value(), -1.0, 1e-12);
  EXPECT_FALSE(PearsonCorrelation(xs, {1, 1, 1, 1, 1}).ok());
  EXPECT_FALSE(PearsonCorrelation(xs, {1, 2}).ok());
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {0.3, 1.7, -2.2, 4.4, 0.0, 3.1};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), 6);
  EXPECT_NEAR(rs.mean(), Mean(xs).value(), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs).value(), 1e-12);
  EXPECT_NEAR(rs.std_error(), StdError(xs).value(), 1e-12);
}

TEST(StudentT, CdfSymmetryAndKnownValues) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // t_{0.975, 10} = 2.228138852; CDF(2.228..., 10) = 0.975.
  EXPECT_NEAR(StudentTCdf(2.228138852, 10.0), 0.975, 1e-6);
  // Symmetric tails.
  EXPECT_NEAR(StudentTCdf(-1.3, 7.0) + StudentTCdf(1.3, 7.0), 1.0, 1e-10);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (double df : {1.0, 3.0, 10.0, 30.0, 120.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.9, 0.975}) {
      const double t = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(t, df), p, 1e-6) << "df=" << df << " p=" << p;
    }
  }
}

TEST(StudentT, CriticalValuesMatchTables) {
  // Classic two-sided critical values.
  EXPECT_NEAR(StudentTCriticalTwoSided(0.95, 10.0), 2.228, 1e-3);
  EXPECT_NEAR(StudentTCriticalTwoSided(0.90, 4.0), 2.132, 1e-3);
  EXPECT_NEAR(StudentTCriticalTwoSided(0.99, 30.0), 2.750, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(StudentTCriticalTwoSided(0.95, 100000.0), 1.95996, 1e-3);
}

TEST(RegularizedIncompleteBetaTest, Endpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-12);
}

TEST(Regression, ExactLineRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(0.1 * i);
    ys.push_back(0.09 * (0.1 * i) + 0.85);  // Table 6 translation quality
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, 0.09, 1e-12);
  EXPECT_NEAR(fit->beta, 0.85, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->residual_std, 0.0, 1e-9);
}

TEST(Regression, NoisyRecoveryWithinCi) {
  Rng rng(1234);
  const double true_alpha = -0.98, true_beta = 1.40;  // Table 6 latency
  std::vector<double> xs, ys;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Uniform(0.5, 1.0);
    xs.push_back(x);
    ys.push_back(true_alpha * x + true_beta + rng.Normal(0.0, 0.03));
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, true_alpha, 0.1);
  EXPECT_NEAR(fit->beta, true_beta, 0.08);
  // The paper validates its fits at 90% confidence (Table 6).
  EXPECT_TRUE(fit->AlphaCiContains(true_alpha, 0.90));
  EXPECT_TRUE(fit->BetaCiContains(true_beta, 0.90));
  EXPECT_GT(fit->r_squared, 0.9);
}

TEST(Regression, CiCoverageApproximatelyNominal) {
  // Over many repetitions, the 90% CI should contain the true slope roughly
  // 90% of the time.
  Rng rng(99);
  int contained = 0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 12; ++i) {
      const double x = rng.Uniform(0.0, 1.0);
      xs.push_back(x);
      ys.push_back(2.0 * x + 1.0 + rng.Normal(0.0, 0.5));
    }
    auto fit = FitLinear(xs, ys);
    ASSERT_TRUE(fit.ok());
    contained += fit->AlphaCiContains(2.0, 0.90) ? 1 : 0;
  }
  const double coverage = static_cast<double>(contained) / runs;
  EXPECT_GT(coverage, 0.84);
  EXPECT_LT(coverage, 0.96);
}

TEST(Regression, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(FitLinear({1.0}, {2.0}).ok());
  EXPECT_FALSE(FitLinear({1.0, 1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(FitLinear({1.0, 2.0}, {2.0}).ok());
}

TEST(Regression, TwoPointsFitExactlyWithoutInference) {
  auto fit = FitLinear({0.0, 1.0}, {1.0, 3.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->alpha, 2.0);
  EXPECT_DOUBLE_EQ(fit->beta, 1.0);
  EXPECT_FALSE(fit->AlphaHalfWidth(0.9).ok());  // needs n >= 3
}

TEST(Hypothesis, WelchDetectsDifference) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Normal(0.80, 0.05));  // StratRec-guided quality
    b.push_back(rng.Normal(0.70, 0.07));  // unguided quality
  }
  auto test = WelchTTest(a, b);
  ASSERT_TRUE(test.ok());
  EXPECT_TRUE(test->Significant(0.05));
  EXPECT_GT(test->mean_difference, 0.05);
}

TEST(Hypothesis, WelchNoFalsePositiveOnEqualMeans) {
  Rng rng(8);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.Normal(0.5, 0.1));
    b.push_back(rng.Normal(0.5, 0.1));
  }
  auto test = WelchTTest(a, b);
  ASSERT_TRUE(test.ok());
  EXPECT_GT(test->p_value_two_sided, 0.01);
}

TEST(Hypothesis, PairedDetectsConsistentShift) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) {
    const double base = rng.Uniform(0.4, 0.9);
    a.push_back(base + 0.05 + rng.Normal(0.0, 0.02));
    b.push_back(base);
  }
  auto test = PairedTTest(a, b);
  ASSERT_TRUE(test.ok());
  EXPECT_TRUE(test->Significant(0.01));
  EXPECT_NEAR(test->mean_difference, 0.05, 0.02);
}

TEST(Hypothesis, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(WelchTTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {2.0, 3.0}).ok());  // zero-variance diff
}

TEST(Empirical, PaperIntroExpectation) {
  // 70% chance of 7% of workers, 30% chance of 2% -> 5.5% expected.
  auto pmf = EmpiricalPmf::Create({{0.07, 0.7}, {0.02, 0.3}});
  ASSERT_TRUE(pmf.ok());
  EXPECT_NEAR(pmf->Expectation(), 0.055, 1e-12);
}

TEST(Empirical, Section22Expectation) {
  // 50% of 700/1000 + 50% of 900/1000 -> W = 0.8.
  auto pmf = EmpiricalPmf::Create({{0.7, 0.5}, {0.9, 0.5}});
  ASSERT_TRUE(pmf.ok());
  EXPECT_NEAR(pmf->Expectation(), 0.8, 1e-12);
  EXPECT_NEAR(pmf->Variance(), 0.01, 1e-12);
}

TEST(Empirical, CreateValidation) {
  EXPECT_FALSE(EmpiricalPmf::Create({}).ok());
  EXPECT_FALSE(EmpiricalPmf::Create({{0.5, 0.4}}).ok());         // sums to 0.4
  EXPECT_FALSE(EmpiricalPmf::Create({{0.5, -0.1}, {0.6, 1.1}}).ok());
}

TEST(Empirical, FromSamplesCountsDuplicates) {
  auto pmf = EmpiricalPmf::FromSamples({0.2, 0.2, 0.8, 0.8, 0.8});
  ASSERT_TRUE(pmf.ok());
  EXPECT_EQ(pmf->atoms().size(), 2u);
  EXPECT_NEAR(pmf->Expectation(), (0.2 * 2 + 0.8 * 3) / 5.0, 1e-12);
  EXPECT_NEAR(pmf->CdfAt(0.2), 0.4, 1e-12);
  EXPECT_NEAR(pmf->CdfAt(1.0), 1.0, 1e-12);
}

TEST(Empirical, HistogramToPmf) {
  auto hist = Histogram::Create(0.0, 1.0, 4);
  ASSERT_TRUE(hist.ok());
  for (double v : {0.1, 0.1, 0.4, 0.6, 0.9, 1.2, -0.5}) hist->Add(v);
  EXPECT_EQ(hist->total_count(), 7);
  auto pmf = hist->ToPmf();
  ASSERT_TRUE(pmf.ok());
  double total = 0.0;
  for (const auto& atom : pmf->atoms()) total += atom.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Empirical, HistogramValidation) {
  EXPECT_FALSE(Histogram::Create(1.0, 0.0, 4).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  auto empty = Histogram::Create(0.0, 1.0, 4);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->ToPmf().ok());
}

}  // namespace
}  // namespace stratrec::stats
