// Tests for the online/stream scheduler (the paper's Section 7 open
// problem): admissions, queueing, revocations, completions, capacity
// changes, and the rolling-greedy re-admission discipline.
#include <gtest/gtest.h>

#include "src/core/online.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

// One strategy with quality(w) = w: a request's workforce requirement
// equals its quality threshold.
std::vector<StrategyProfile> IdentityCatalog() {
  StrategyProfile identity;
  identity.quality = {1.0, 0.0};
  identity.cost = {0.0, 0.0};
  identity.latency = {0.0, 0.0};
  return {identity};
}

DeploymentRequest Need(std::string id, double workforce, double budget = 0.5) {
  return DeploymentRequest{std::move(id), {workforce, budget, 1.0}, 1};
}

TEST(OnlineScheduler, CreateValidation) {
  EXPECT_FALSE(OnlineScheduler::Create({}, 0.5).ok());
  EXPECT_FALSE(OnlineScheduler::Create(IdentityCatalog(), 1.5).ok());
  EXPECT_TRUE(OnlineScheduler::Create(IdentityCatalog(), 0.5).ok());
}

TEST(OnlineScheduler, AdmitsWhileCapacityLasts) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  auto a = scheduler->OnArrival(Need("a", 0.4));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->kind, AdmissionDecision::Kind::kAdmitted);
  EXPECT_NEAR(a->workforce, 0.4, 1e-12);
  ASSERT_EQ(a->strategies.size(), 1u);

  auto b = scheduler->OnArrival(Need("b", 0.5));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, AdmissionDecision::Kind::kAdmitted);

  // 0.4 + 0.5 + 0.3 > 1.0 -> queued.
  auto c = scheduler->OnArrival(Need("c", 0.3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->kind, AdmissionDecision::Kind::kQueued);
  EXPECT_EQ(scheduler->active(), 2u);
  EXPECT_EQ(scheduler->pending(), 1u);
  EXPECT_NEAR(scheduler->used_workforce(), 0.9, 1e-12);
  EXPECT_NEAR(scheduler->RemainingCapacity(), 0.1, 1e-12);
}

TEST(OnlineScheduler, RevocationFreesCapacityAndReadmits) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("a", 0.6)).ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("b", 0.5)).ok());  // queued
  EXPECT_EQ(scheduler->pending(), 1u);

  ASSERT_TRUE(scheduler->OnRevocation("a").ok());
  // b fits now and is re-admitted automatically.
  EXPECT_EQ(scheduler->active(), 1u);
  EXPECT_EQ(scheduler->pending(), 0u);
  EXPECT_NEAR(scheduler->used_workforce(), 0.5, 1e-12);
  EXPECT_EQ(scheduler->stats().revoked, 1u);
}

TEST(OnlineScheduler, CompletionAlsoDrainsQueue) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 0.8);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("a", 0.7)).ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("b", 0.6)).ok());  // queued
  ASSERT_TRUE(scheduler->OnCompletion("a").ok());
  EXPECT_EQ(scheduler->active(), 1u);
  EXPECT_EQ(scheduler->stats().completed, 1u);
  EXPECT_FALSE(scheduler->OnCompletion("a").ok());  // already gone
}

TEST(OnlineScheduler, QueueDrainsInDensityOrder) {
  OnlineOptions options;
  options.batch.objective = Objective::kPayoff;
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 0.5, options);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("blocker", 0.5, 0.5)).ok());
  // Two queued requests with equal workforce, different payoffs.
  ASSERT_TRUE(scheduler->OnArrival(Need("cheap", 0.4, 0.3)).ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("valuable", 0.4, 0.9)).ok());
  EXPECT_EQ(scheduler->pending(), 2u);

  ASSERT_TRUE(scheduler->OnRevocation("blocker").ok());
  // Only one fits; the denser (valuable) one must win.
  EXPECT_EQ(scheduler->active(), 1u);
  EXPECT_EQ(scheduler->pending(), 1u);
  EXPECT_NEAR(scheduler->stats().objective, 0.9, 1e-12);
}

TEST(OnlineScheduler, RejectsWhenQueueFull) {
  OnlineOptions options;
  options.max_pending = 1;
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 0.1, options);
  ASSERT_TRUE(scheduler.ok());
  auto q1 = scheduler->OnArrival(Need("q1", 0.5));
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->kind, AdmissionDecision::Kind::kQueued);
  auto q2 = scheduler->OnArrival(Need("q2", 0.5));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->kind, AdmissionDecision::Kind::kRejected);
  EXPECT_EQ(scheduler->stats().rejected, 1u);
}

TEST(OnlineScheduler, RejectsIneligibleRequests) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  // k = 2 with a single-strategy catalog: ineligible, immediate reject.
  DeploymentRequest request{"big-k", {0.2, 0.5, 1.0}, 2};
  auto decision = scheduler->OnArrival(request);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->kind, AdmissionDecision::Kind::kRejected);
}

TEST(OnlineScheduler, DuplicateActiveIdsRejected) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("dup", 0.1)).ok());
  EXPECT_FALSE(scheduler->OnArrival(Need("dup", 0.1)).ok());
}

TEST(OnlineScheduler, UnknownRevocationFails) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  auto status = scheduler->OnRevocation("ghost");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(OnlineScheduler, QueuedRequestCanBeRevoked) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 0.1);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("waiting", 0.5)).ok());
  EXPECT_EQ(scheduler->pending(), 1u);
  ASSERT_TRUE(scheduler->OnRevocation("waiting").ok());
  EXPECT_EQ(scheduler->pending(), 0u);
}

TEST(OnlineScheduler, AvailabilityIncreaseAdmitsPending) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 0.2);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("w", 0.5)).ok());
  EXPECT_EQ(scheduler->pending(), 1u);
  ASSERT_TRUE(scheduler->SetAvailability(0.9).ok());
  EXPECT_EQ(scheduler->active(), 1u);
  EXPECT_EQ(scheduler->pending(), 0u);
  EXPECT_FALSE(scheduler->SetAvailability(2.0).ok());
}

TEST(OnlineScheduler, AvailabilityDecreaseHonorsCommitments) {
  auto scheduler = OnlineScheduler::Create(IdentityCatalog(), 1.0);
  ASSERT_TRUE(scheduler.ok());
  ASSERT_TRUE(scheduler->OnArrival(Need("a", 0.8)).ok());
  ASSERT_TRUE(scheduler->SetAvailability(0.5).ok());
  EXPECT_EQ(scheduler->active(), 1u);  // still served
  EXPECT_DOUBLE_EQ(scheduler->RemainingCapacity(), 0.0);
  // New arrivals queue rather than admit.
  auto decision = scheduler->OnArrival(Need("b", 0.1));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->kind, AdmissionDecision::Kind::kQueued);
}

TEST(OnlineScheduler, StatsAreConsistentOverRandomStream) {
  workload::Generator generator({}, 4242);
  const auto profiles = generator.Profiles(20);
  auto scheduler = OnlineScheduler::Create(profiles, 0.8);
  ASSERT_TRUE(scheduler.ok());
  stratrec::Rng rng(31);
  std::vector<std::string> live;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.Bernoulli(0.35)) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      if (rng.Bernoulli(0.5)) {
        (void)scheduler->OnRevocation(live[pick]);
      } else {
        (void)scheduler->OnCompletion(live[pick]);
      }
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      auto requests = generator.RequestsWithRanges(1, 2, {0.5, 0.75},
                                                   {0.7, 1.0}, {0.7, 1.0});
      requests[0].id = "r" + std::to_string(step);
      auto decision = scheduler->OnArrival(requests[0]);
      ASSERT_TRUE(decision.ok());
      if (decision->kind == AdmissionDecision::Kind::kAdmitted) {
        live.push_back(requests[0].id);
      }
    }
    // Invariants: never over capacity; utilization within [0, 1].
    EXPECT_LE(scheduler->used_workforce(),
              scheduler->availability() + 1e-9);
    EXPECT_LE(scheduler->stats().peak_utilization, 1.0 + 1e-9);
  }
  const auto& stats = scheduler->stats();
  // Every arrival lands in exactly one of {admitted, queued, rejected};
  // queue re-admissions increment `admitted` a second time, so the sum can
  // only exceed arrivals, never undershoot.
  EXPECT_GE(stats.admitted + stats.queued + stats.rejected, stats.arrivals);
  EXPECT_LE(stats.queued + stats.rejected, stats.arrivals);
  EXPECT_GE(stats.admitted, scheduler->active());
}

}  // namespace
}  // namespace stratrec::core
