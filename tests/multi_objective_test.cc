// Tests for the multi-objective batch extension (paper Section 7 future
// work): scalarized objectives and the Pareto sweep.
#include <gtest/gtest.h>

#include "src/core/multi_objective.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

struct Fixture {
  Fixture() {
    workload::Generator generator({}, 777);
    profiles = generator.Profiles(25);
    requests = generator.RequestsWithRanges(8, 2, {0.5, 0.75}, {0.7, 1.0},
                                            {0.7, 1.0});
  }
  std::vector<StrategyProfile> profiles;
  std::vector<DeploymentRequest> requests;
};

TEST(MultiObjective, PureThroughputMatchesBatchStrat) {
  Fixture f;
  ObjectiveWeights weights;  // throughput 1, rest 0
  auto combined = SolveBatchWeighted(f.requests, f.profiles, 0.8, weights);
  ASSERT_TRUE(combined.ok());
  BatchOptions options;
  options.objective = Objective::kThroughput;
  auto classic = BatchStrat(f.requests, f.profiles, 0.8, options);
  ASSERT_TRUE(classic.ok());
  EXPECT_DOUBLE_EQ(combined->throughput, classic->total_objective);
  EXPECT_EQ(combined->batch.satisfied, classic->satisfied);
}

TEST(MultiObjective, PurePayoffMatchesBatchStrat) {
  Fixture f;
  ObjectiveWeights weights;
  weights.throughput = 0.0;
  weights.payoff = 1.0;
  auto combined = SolveBatchWeighted(f.requests, f.profiles, 0.8, weights);
  ASSERT_TRUE(combined.ok());
  BatchOptions options;
  options.objective = Objective::kPayoff;
  auto classic = BatchStrat(f.requests, f.profiles, 0.8, options);
  ASSERT_TRUE(classic.ok());
  EXPECT_NEAR(combined->payoff, classic->total_objective, 1e-9);
}

TEST(MultiObjective, ComponentsAddUp) {
  Fixture f;
  ObjectiveWeights weights;
  weights.throughput = 0.6;
  weights.payoff = 0.3;
  weights.effort = 0.1;
  auto result = SolveBatchWeighted(f.requests, f.profiles, 0.8, weights);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->scalarized,
              0.6 * result->throughput + 0.3 * result->payoff -
                  0.1 * result->effort,
              1e-9);
  EXPECT_LE(result->effort, 0.8 + 1e-9);
}

TEST(MultiObjective, EffortPenaltyPrefersLighterRequests) {
  // Two requests, identical payoff, different workforce: with a strong
  // effort weight the heavy one is dropped even when capacity allows both.
  StrategyProfile identity;
  identity.quality = {1.0, 0.0};
  identity.cost = {0.0, 0.0};
  identity.latency = {0.0, 0.0};
  const std::vector<StrategyProfile> profiles = {identity};
  const std::vector<DeploymentRequest> requests = {
      {"light", {0.10, 0.5, 1.0}, 1},   // needs w = 0.10
      {"heavy", {0.90, 0.5, 1.0}, 1},   // needs w = 0.90
  };
  ObjectiveWeights weights;
  weights.throughput = 1.0;
  weights.effort = 1.2;  // heavy item's value: 1 - 1.2 * 0.9 < 0
  auto result = SolveBatchWeighted(requests, profiles, 1.0, weights);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->batch.satisfied.size(), 1u);
  EXPECT_EQ(result->batch.satisfied[0], 0u);

  // Without the penalty both are served.
  weights.effort = 0.0;
  auto lax = SolveBatchWeighted(requests, profiles, 1.0, weights);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax->batch.satisfied.size(), 2u);
}

TEST(MultiObjective, GreedyWithinHalfOfBruteForce) {
  Fixture f;
  ObjectiveWeights weights;
  weights.throughput = 0.5;
  weights.payoff = 0.5;
  auto greedy = SolveBatchWeighted(f.requests, f.profiles, 0.6, weights);
  auto exact = SolveBatchWeighted(f.requests, f.profiles, 0.6, weights, {},
                                  BatchAlgorithm::kBruteForce);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(greedy->scalarized, 0.5 * exact->scalarized - 1e-9);
  EXPECT_LE(greedy->scalarized, exact->scalarized + 1e-9);
}

TEST(MultiObjective, InvalidInputsRejected) {
  Fixture f;
  ObjectiveWeights negative;
  negative.payoff = -1.0;
  EXPECT_FALSE(SolveBatchWeighted(f.requests, f.profiles, 0.5, negative).ok());
  EXPECT_FALSE(SolveBatchWeighted(f.requests, f.profiles, -0.5, {}).ok());
  EXPECT_FALSE(SolveBatchWeighted(f.requests, f.profiles, 0.5, {}, {},
                                  BatchAlgorithm::kBaselineG)
                   .ok());
}

TEST(MultiObjective, ParetoSweepTradesThroughputForPayoff) {
  Fixture f;
  auto curve = SweepPareto(f.requests, f.profiles, 0.5, 11);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 11u);
  // Endpoints: lambda grows from 0 (pure throughput) to 1 (pure payoff).
  EXPECT_DOUBLE_EQ(curve->front().payoff_weight, 0.0);
  EXPECT_DOUBLE_EQ(curve->back().payoff_weight, 1.0);
  // Throughput is maximal at lambda = 0; payoff maximal at lambda = 1.
  for (const auto& point : *curve) {
    EXPECT_LE(point.throughput, curve->front().throughput + 1e-9);
    EXPECT_LE(point.payoff, curve->back().payoff + 1e-9);
  }
  EXPECT_FALSE(SweepPareto(f.requests, f.profiles, 0.5, 1).ok());
}

}  // namespace
}  // namespace stratrec::core
