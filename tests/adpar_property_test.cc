// Property sweeps establishing AdparExact's exactness: on hundreds of random
// instances its objective must equal the brute-force optimum, and the
// baselines must be valid but never better.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/adpar.h"
#include "src/core/adpar_baselines.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

class AdparPropertyTest
    : public testing::TestWithParam<
          std::tuple<int, int, workload::DimDistribution, uint64_t>> {
 protected:
  void SetUp() override {
    const int num_strategies = std::get<0>(GetParam());
    k_ = std::get<1>(GetParam());
    workload::GeneratorOptions options;
    options.distribution = std::get<2>(GetParam());
    workload::Generator generator(options, std::get<3>(GetParam()));
    strategies_ = generator.StrategyParams(num_strategies);
    auto requests = generator.Requests(5, k_);
    for (const auto& r : requests) requests_.push_back(r.thresholds);
  }

  int CountCovered(const ParamVector& d) const {
    int covered = 0;
    for (const auto& s : strategies_) covered += Satisfies(s, d) ? 1 : 0;
    return covered;
  }

  std::vector<ParamVector> strategies_;
  std::vector<ParamVector> requests_;
  int k_ = 1;
};

TEST_P(AdparPropertyTest, ExactMatchesBruteForce) {
  for (const ParamVector& d : requests_) {
    auto exact = AdparExact(strategies_, d, k_);
    auto brute = AdparBrute(strategies_, d, k_);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    EXPECT_NEAR(exact->squared_distance, brute->squared_distance, 1e-9)
        << "d=" << d.ToString() << " k=" << k_;
  }
}

TEST_P(AdparPropertyTest, AlternativeCoversAtLeastK) {
  for (const ParamVector& d : requests_) {
    auto exact = AdparExact(strategies_, d, k_);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(CountCovered(exact->alternative), k_);
    EXPECT_EQ(exact->strategies.size(), static_cast<size_t>(k_));
    // Reported strategies do satisfy the alternative.
    for (size_t j : exact->strategies) {
      EXPECT_TRUE(Satisfies(strategies_[j], exact->alternative));
    }
  }
}

TEST_P(AdparPropertyTest, RelaxationNeverTightens) {
  for (const ParamVector& d : requests_) {
    auto exact = AdparExact(strategies_, d, k_);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(exact->alternative.quality, d.quality + 1e-12);
    EXPECT_GE(exact->alternative.cost, d.cost - 1e-12);
    EXPECT_GE(exact->alternative.latency, d.latency - 1e-12);
  }
}

TEST_P(AdparPropertyTest, BaselinesValidAndNeverBeatExact) {
  for (const ParamVector& d : requests_) {
    auto exact = AdparExact(strategies_, d, k_);
    ASSERT_TRUE(exact.ok());
    for (auto* baseline : {&AdparBaseline2, &AdparBaseline3}) {
      auto result = (*baseline)(strategies_, d, k_);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_GE(CountCovered(result->alternative), k_);
      EXPECT_GE(result->squared_distance, exact->squared_distance - 1e-9);
    }
  }
}

TEST_P(AdparPropertyTest, DistanceMonotoneInK) {
  // Larger k can only push the alternative further from the request.
  for (const ParamVector& d : requests_) {
    double previous = -1.0;
    for (int k = 1; k <= k_; ++k) {
      auto exact = AdparExact(strategies_, d, k);
      ASSERT_TRUE(exact.ok());
      EXPECT_GE(exact->squared_distance, previous - 1e-12);
      previous = exact->squared_distance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, AdparPropertyTest,
    testing::Combine(testing::Values(8, 15, 24),
                     testing::Values(1, 3, 6),
                     testing::Values(workload::DimDistribution::kUniform,
                                     workload::DimDistribution::kNormal),
                     testing::Values(101u, 202u, 303u)));

// Superset monotonicity needs its own fixture: adding strategies to the
// catalog can only improve (not worsen) the optimal alternative.
TEST(AdparMonotonicity, MoreStrategiesNeverHurt) {
  workload::Generator generator({}, 777);
  const auto strategies = generator.StrategyParams(30);
  const ParamVector d{0.9, 0.7, 0.7};
  double previous = 1e9;
  for (size_t n = 5; n <= strategies.size(); n += 5) {
    const std::vector<ParamVector> subset(strategies.begin(),
                                          strategies.begin() + n);
    auto exact = AdparExact(subset, d, 5);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(exact->squared_distance, previous + 1e-12);
    previous = exact->squared_distance;
  }
}

}  // namespace
}  // namespace stratrec::core
