// stratrec::Service facade tests: envelope semantics, the algorithm
// registry, named availability models, the three modes, and — the point of
// the session design — many threads driving one service concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/api/catalog.h"
#include "src/api/registry.h"
#include "src/api/service.h"
#include "src/workload/generators.h"

namespace stratrec::api {
namespace {

core::Catalog Table1Catalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

std::vector<core::DeploymentRequest> Table1Requests() {
  return {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
}

TEST(ServiceCreate, ValidatesCatalogAndConfig) {
  EXPECT_FALSE(Service::Create(core::Catalog{}).ok());

  ServiceConfig bad_algorithm;
  bad_algorithm.batch.algorithm = "no-such-backend";
  auto not_found = Service::Create(Table1Catalog(), bad_algorithm);
  ASSERT_FALSE(not_found.ok());
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);

  ServiceConfig bad_availability;
  bad_availability.availability = AvailabilitySpec::Fixed(1.5);
  EXPECT_FALSE(Service::Create(Table1Catalog(), bad_availability).ok());

  ServiceConfig bad_grain;
  bad_grain.execution.parallel_grain = 0;
  EXPECT_EQ(Service::Create(Table1Catalog(), bad_grain).status().code(),
            StatusCode::kInvalidArgument);
  ServiceConfig absurd_pool;
  absurd_pool.execution.worker_threads = 100'000;
  EXPECT_EQ(Service::Create(Table1Catalog(), absurd_pool).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(Service::Create(Table1Catalog()).ok());
}

TEST(ServiceBatch, ReproducesPaperExample1) {
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::FromPmf({{0.7, 0.5}, {0.9, 0.5}});
  auto report = service->SubmitBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_DOUBLE_EQ(report->availability, 0.8);
  EXPECT_EQ(report->algorithm, "batchstrat");
  EXPECT_FALSE(report->request_id.empty());
  // d3 is served with {s2, s3, s4} (Section 2.2); d1 and d2 receive
  // alternatives.
  const core::BatchResult& result = report->result.aggregator.batch;
  ASSERT_EQ(result.satisfied, std::vector<size_t>{2});
  EXPECT_EQ(report->result.alternatives.size(), 2u);
}

TEST(ServiceBatch, EnvelopeIdsAreStableAndUnique) {
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::Fixed(0.8);
  auto first = service->SubmitBatch(batch);
  auto second = service->SubmitBatch(batch);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->request_id, second->request_id);
  EXPECT_EQ(first->request_id.rfind("batch-", 0), 0u);
}

TEST(ServiceBatch, PerRequestOverridesBeatConfig) {
  ServiceConfig config;
  config.batch.algorithm = "batchstrat";
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = AvailabilitySpec::Fixed(0.8);
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.algorithm = "brute-force";
  batch.recommend_alternatives = false;
  auto report = service->SubmitBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "brute-force");
  EXPECT_DOUBLE_EQ(report->availability, 0.8);  // config default used
  EXPECT_TRUE(report->result.alternatives.empty());

  batch.algorithm = "unknown";
  auto unknown = service->SubmitBatch(batch);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // An unknown adpar backend only matters when alternatives will run.
  batch.algorithm = "batchstrat";
  batch.adpar_solver = "unknown";
  batch.recommend_alternatives = false;
  EXPECT_TRUE(service->SubmitBatch(batch).ok());
  batch.recommend_alternatives = true;
  EXPECT_EQ(service->SubmitBatch(batch).status().code(),
            StatusCode::kNotFound);
}

TEST(ServiceRegistry, CustomBackendPlugsInWithoutCallerChanges) {
  // A trivial "reject everything" backend registered under a fresh name
  // becomes selectable by name on an existing service.
  auto status = AlgorithmRegistry::Global().RegisterBatch(
      "test-reject-all",
      [](const std::vector<core::DeploymentRequest>& requests,
         const std::vector<core::StrategyProfile>&, double,
         const core::BatchOptions&) -> Result<core::BatchResult> {
        core::BatchResult result;
        result.outcomes.resize(requests.size());
        for (size_t i = 0; i < requests.size(); ++i) {
          result.outcomes[i].request_index = i;
          result.unsatisfied.push_back(i);
        }
        return result;
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Duplicate registration is refused.
  EXPECT_EQ(AlgorithmRegistry::Global()
                .RegisterBatch("test-reject-all", nullptr)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AlgorithmRegistry::Global()
                .RegisterBatch("test-reject-all",
                               core::SolverForAlgorithm(
                                   core::BatchAlgorithm::kBatchStrat))
                .code(),
            StatusCode::kFailedPrecondition);

  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::Fixed(0.8);
  batch.algorithm = "test-reject-all";
  auto report = service->SubmitBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->result.aggregator.batch.satisfied.empty());
  // Every request flowed to ADPaR, which still works.
  EXPECT_EQ(report->result.alternatives.size() +
                report->result.adpar_failures.size(),
            batch.requests.size());
}

TEST(ServiceRegistry, WeightedBackendSelectableByName) {
  // SolveBatchWeighted is reachable through the facade: the built-in
  // "weighted" entry, and custom weight mixes via MakeWeightedBatchSolver.
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::Fixed(0.8);
  batch.aggregation = core::AggregationMode::kMax;
  batch.algorithm = "weighted";
  auto report = service->SubmitBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->algorithm, "weighted");
  // Default weights are throughput-only: same selection as batchstrat.
  EXPECT_EQ(report->result.aggregator.batch.satisfied,
            std::vector<size_t>{2});

  core::ObjectiveWeights worker_centric;
  worker_centric.throughput = 1.0;
  worker_centric.effort = 0.5;
  ASSERT_TRUE(AlgorithmRegistry::Global()
                  .RegisterBatch("test-worker-centric",
                                 MakeWeightedBatchSolver(worker_centric))
                  .ok());
  batch.algorithm = "test-worker-centric";
  auto weighted = service->SubmitBatch(batch);
  ASSERT_TRUE(weighted.ok()) << weighted.status().ToString();
  EXPECT_EQ(weighted->algorithm, "test-worker-centric");
  // The effort penalty never *adds* served requests at equal workforce.
  EXPECT_LE(weighted->result.aggregator.batch.satisfied.size(),
            report->result.aggregator.batch.satisfied.size() +
                report->result.alternatives.size());
}

TEST(ServiceAvailability, NamedModelsResolvePerCall) {
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());
  auto model = core::AvailabilityModel::FromPmf({{0.7, 0.5}, {0.9, 0.5}});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(
      service->RegisterAvailabilityModel("early-week", *model).ok());
  EXPECT_EQ(service->RegisterAvailabilityModel("early-week", *model).code(),
            StatusCode::kFailedPrecondition);

  BatchRequest batch;
  batch.requests = Table1Requests();
  batch.availability = AvailabilitySpec::Named("early-week");
  auto report = service->SubmitBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->availability, 0.8);

  batch.availability = AvailabilitySpec::Named("weekend");
  auto missing = service->SubmitBatch(batch);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ServiceSweep, CrossProductAndPerCellInfeasibility) {
  auto service = Service::Create(Table1Catalog());
  ASSERT_TRUE(service.ok());

  SweepRequest sweep;
  sweep.availability = AvailabilitySpec::Fixed(0.8);
  sweep.targets = {{"d2", {0.8, 0.20, 0.28}, 3},
                   {"too-big", {0.8, 0.20, 0.28}, 9}};
  sweep.solvers = {"exact", "paper-sweep", "brute"};
  auto report = service->RunSweep(sweep);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->request_id.rfind("sweep-", 0), 0u);
  ASSERT_EQ(report->outcomes.size(), 6u);
  EXPECT_EQ(report->strategy_params.size(), 4u);

  for (const SweepOutcome& outcome : report->outcomes) {
    if (outcome.target_id == "d2") {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      EXPECT_EQ(outcome.result.strategies.size(), 3u);
      // The paper-sweep heuristic can only be worse than the exact solver.
      if (outcome.solver == "exact") {
        EXPECT_NEAR(outcome.result.distance, 0.3833, 1e-3);
      }
    } else {
      // k = 9 exceeds the 4-strategy catalog: per-cell kInfeasible, the
      // sweep itself succeeds.
      EXPECT_EQ(outcome.status.code(), StatusCode::kInfeasible);
    }
  }

  SweepRequest bad;
  bad.targets = sweep.targets;
  bad.solvers = {"nope"};
  EXPECT_EQ(service->RunSweep(bad).status().code(), StatusCode::kNotFound);
}

TEST(ServiceStream, EventEnvelopeDrivesTheSession) {
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = AvailabilitySpec::Fixed(0.8);
  auto service = Service::Create(Table1Catalog(), config);
  ASSERT_TRUE(service.ok());

  auto session = service->OpenStream();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->id().rfind("stream-", 0), 0u);
  EXPECT_DOUBLE_EQ(session->availability(), 0.8);

  auto arrival = session->Submit(
      StreamEvent::Arrival({"d3", {0.7, 0.83, 0.28}, 3}));
  ASSERT_TRUE(arrival.ok());
  EXPECT_EQ(arrival->decision.kind, core::AdmissionDecision::Kind::kAdmitted);
  EXPECT_EQ(arrival->request_id, "d3");
  EXPECT_EQ(arrival->active, 1u);

  auto unknown = session->Submit(StreamEvent::Revocation("ghost"));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto window = session->Submit(StreamEvent::AvailabilityChange(
      AvailabilitySpec::Fixed(0.55)));
  ASSERT_TRUE(window.ok());
  EXPECT_DOUBLE_EQ(window->availability, 0.55);

  ASSERT_TRUE(session->Complete("d3").ok());
  EXPECT_EQ(session->active(), 0u);
  EXPECT_EQ(session->stats().completed, 1u);

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.streams_opened, 1u);
  // arrival + window change + completion; the failed revocation is not
  // counted.
  EXPECT_EQ(stats.stream_events, 3u);
  EXPECT_EQ(stats.requests_processed, 1u);
}

TEST(ServiceConcurrency, ManySessionsAndBatchesInParallel) {
  workload::Generator generator({}, 0x5E55'1011ull);
  ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = AvailabilitySpec::Fixed(0.7);
  auto service =
      Service::Create(CatalogFromProfiles(generator.Profiles(60)), config);
  ASSERT_TRUE(service.ok());

  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      workload::Generator local({}, 0xC0FFEEull + static_cast<uint64_t>(t));
      // Even threads drive an independent stream session; odd threads
      // hammer SubmitBatch on the shared service.
      if (t % 2 == 0) {
        auto session = service->OpenStream();
        if (!session.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kEventsPerThread; ++i) {
          auto requests = local.RequestsWithRanges(1, 2, {0.5, 0.75},
                                                   {0.7, 1.0}, {0.7, 1.0});
          requests[0].id =
              "t" + std::to_string(t) + "-req-" + std::to_string(i);
          auto update =
              session->Submit(StreamEvent::Arrival(requests[0]));
          if (!update.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (update->decision.kind ==
              core::AdmissionDecision::Kind::kAdmitted) {
            if (!session->Complete(requests[0].id).ok()) failures.fetch_add(1);
          }
        }
      } else {
        BatchRequest batch;
        batch.requests = local.RequestsWithRanges(6, 2, {0.5, 0.75},
                                                  {0.7, 1.0}, {0.7, 1.0});
        for (int i = 0; i < kEventsPerThread; ++i) {
          auto report = service->SubmitBatch(batch);
          if (!report.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.streams_opened, static_cast<size_t>(kThreads / 2));
  // Every arrival is a stream event; completions add on top.
  EXPECT_GE(stats.stream_events,
            static_cast<size_t>(kThreads / 2) * kEventsPerThread);
  EXPECT_EQ(stats.batches, static_cast<size_t>(kThreads / 2) *
                               kEventsPerThread);
  // Every stream arrival and every batched request is accounted for.
  EXPECT_EQ(stats.requests_processed,
            static_cast<size_t>(kThreads / 2) * kEventsPerThread +
                static_cast<size_t>(kThreads / 2) * kEventsPerThread * 6);
}

}  // namespace
}  // namespace stratrec::api
