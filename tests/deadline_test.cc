// Deadline propagation tests: a request's relative deadline_ms budget is
// enforced when a worker dequeues the job — expired work completes with
// kDeadlineExceeded through the ticket cancel path (never starts solving),
// counted in stats().deadline_exceeded, on both the Service and the
// ShardRouter tiers. Also pins the ticket building blocks the fault-tolerant
// tiers ride on: WaitFor (non-consuming on timeout) and CancelWith (explicit
// error outcome).
//
// Determinism: a registry backend blocks the one-worker pool behind a gate,
// so "queued past the deadline" is provable, not timing-dependent.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/api/registry.h"
#include "src/api/service.h"
#include "src/router/shard_router.h"

namespace stratrec::api {
namespace {

core::Catalog SmallCatalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

BatchRequest SmallBatch() {
  BatchRequest batch;
  batch.requests = {{"d1", {0.4, 0.17, 0.28}, 3}};
  batch.availability = AvailabilitySpec::Fixed(0.8);
  return batch;
}

/// One gate per blocked pool: the backend parks the worker until Release().
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this]() { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      released = true;
    }
    cv.notify_all();
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex);
    entered = false;
    released = false;
  }
};

Gate& TheGate() {
  static Gate* gate = new Gate();
  return *gate;
}

void RegisterGateBackendOnce() {
  static const bool registered = []() {
    return AlgorithmRegistry::Global()
        .RegisterBatch(
            "deadline-gate",
            [](const std::vector<core::DeploymentRequest>& requests,
               const std::vector<core::StrategyProfile>&, double,
               const core::BatchOptions&) -> Result<core::BatchResult> {
              Gate& gate = TheGate();
              std::unique_lock<std::mutex> lock(gate.mutex);
              gate.entered = true;
              gate.cv.notify_all();
              gate.cv.wait(lock, [&gate]() { return gate.released; });
              core::BatchResult result;
              result.outcomes.resize(requests.size());
              return result;
            })
        .ok();
  }();
  ASSERT_TRUE(registered);
}

BatchRequest GateBatch() {
  BatchRequest batch = SmallBatch();
  batch.algorithm = "deadline-gate";
  batch.recommend_alternatives = false;
  return batch;
}

TEST(Deadline, ExpiredQueuedBatchCompletesWithDeadlineExceeded) {
  RegisterGateBackendOnce();
  TheGate().Reset();

  ServiceConfig config;
  config.execution.worker_threads = 1;
  auto service = Service::Create(SmallCatalog(), config);
  ASSERT_TRUE(service.ok());

  auto blocking = service->SubmitBatchAsync(GateBatch());
  TheGate().AwaitEntered();

  BatchRequest doomed_request = SmallBatch();
  doomed_request.deadline_ms = 5.0;
  auto doomed = service->SubmitBatchAsync(std::move(doomed_request));

  // WaitFor on a still-queued job: times out, consumes nothing.
  EXPECT_FALSE(doomed.WaitFor(std::chrono::milliseconds(1)).has_value());
  EXPECT_FALSE(doomed.done());

  // Hold the queue well past the 5ms budget, then let the worker at it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TheGate().Release();
  ASSERT_TRUE(blocking.Wait().ok());

  auto outcome = doomed.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(outcome.status().message().find("deadline expired"),
            std::string::npos);

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.batches, 1u);  // the expired job never counts as solved
}

TEST(Deadline, ExpiredQueuedSweepCompletesWithDeadlineExceeded) {
  RegisterGateBackendOnce();
  TheGate().Reset();

  ServiceConfig config;
  config.execution.worker_threads = 1;
  auto service = Service::Create(SmallCatalog(), config);
  ASSERT_TRUE(service.ok());

  auto blocking = service->SubmitBatchAsync(GateBatch());
  TheGate().AwaitEntered();

  SweepRequest sweep;
  sweep.targets = {{"t1", {0.9, 0.1, 0.1}, 1}};
  sweep.availability = AvailabilitySpec::Fixed(0.8);
  sweep.deadline_ms = 5.0;
  auto doomed = service->RunSweepAsync(std::move(sweep));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TheGate().Release();
  ASSERT_TRUE(blocking.Wait().ok());

  auto outcome = doomed.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service->stats().deadline_exceeded, 1u);
}

TEST(Deadline, GenerousDeadlineCompletesNormally) {
  auto service = Service::Create(SmallCatalog(), {});
  ASSERT_TRUE(service.ok());

  BatchRequest batch = SmallBatch();
  batch.deadline_ms = 60'000.0;
  auto ticket = service->SubmitBatchAsync(std::move(batch));
  auto outcome = ticket.WaitFor(std::chrono::seconds(30));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_EQ(service->stats().deadline_exceeded, 0u);
}

TEST(Deadline, RouterEnforcesDeadlinesOnItsOwnQueue) {
  RegisterGateBackendOnce();
  TheGate().Reset();

  RouterConfig config;
  config.shards = 2;
  config.router_threads = 1;
  auto router = ShardRouter::Create(SmallCatalog(), config);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // A custom-registry solve runs unsharded on the router pool, so the gate
  // provably blocks the router's one worker.
  auto blocking = router->SubmitBatchAsync(GateBatch());
  TheGate().AwaitEntered();

  BatchRequest doomed_request = SmallBatch();
  doomed_request.deadline_ms = 5.0;
  auto doomed = router->SubmitBatchAsync(std::move(doomed_request));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TheGate().Release();
  ASSERT_TRUE(blocking.Wait().ok());

  auto outcome = doomed.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(router->stats().deadline_exceeded, 1u);
}

TEST(Ticket, CancelWithCompletesQueuedWorkWithTheGivenStatus) {
  RegisterGateBackendOnce();
  TheGate().Reset();

  ServiceConfig config;
  config.execution.worker_threads = 1;
  auto service = Service::Create(SmallCatalog(), config);
  ASSERT_TRUE(service.ok());

  auto blocking = service->SubmitBatchAsync(GateBatch());
  TheGate().AwaitEntered();

  auto queued = service->SubmitBatchAsync(SmallBatch());
  EXPECT_TRUE(
      queued.CancelWith(Status::DeadlineExceeded("manual kill")));
  EXPECT_FALSE(queued.CancelWith(Status::Internal("second wins nothing")));

  auto outcome = queued.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome.status().message(), "manual kill");

  TheGate().Release();
  ASSERT_TRUE(blocking.Wait().ok());
}

}  // namespace
}  // namespace stratrec::api
