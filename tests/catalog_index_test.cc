// The CatalogIndex equivalence surface: every indexed hot path must be
// bit-identical to its unindexed counterpart —
//
//   * WorkforceMatrix::Compute from the SoA arrays vs from profiles,
//   * the index-accepting AdparExact (prebuilt orderings + skyline
//     pruning) vs the classic per-request one,
//   * StratRec with a reused availability snapshot vs without,
//   * a Service batch served from a warm snapshot cache vs a cold one
//     (byte-compared through the wire codec, at several pool sizes).
//
// Plus the cache bookkeeping itself: hit/miss counters, LRU eviction, and
// availability quantization.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/codec.h"
#include "src/api/service.h"
#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/core/catalog_index.h"
#include "src/core/stratrec.h"
#include "src/core/workforce.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

// Profiles with adversarial coefficient draws: slopes of either sign, zero
// slopes (constant parameters), intercepts outside [0, 1] so clamping is
// exercised — a strictly wider space than workload::Generator emits.
std::vector<StrategyProfile> RandomProfiles(Rng& rng, int count) {
  std::vector<StrategyProfile> profiles(static_cast<size_t>(count));
  for (StrategyProfile& profile : profiles) {
    for (LinearModel* model :
         {&profile.quality, &profile.cost, &profile.latency}) {
      model->alpha = rng.Bernoulli(0.15) ? 0.0 : rng.Uniform(-1.5, 1.5);
      model->beta = rng.Uniform(-0.5, 1.5);
    }
  }
  return profiles;
}

std::vector<DeploymentRequest> RandomRequests(Rng& rng, int count,
                                              int max_k) {
  std::vector<DeploymentRequest> requests(static_cast<size_t>(count));
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = "d" + std::to_string(i);
    requests[i].thresholds = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    requests[i].k = static_cast<int>(rng.UniformInt(1, max_k));
  }
  return requests;
}

TEST(CatalogIndex, TransposesCoefficientsAndEstimatesIdentically) {
  Rng rng(0x1DE40001ull);
  const auto profiles = RandomProfiles(rng, 37);
  const CatalogIndex index = CatalogIndex::Build(profiles);
  ASSERT_EQ(index.size(), profiles.size());
  for (size_t j = 0; j < profiles.size(); ++j) {
    EXPECT_TRUE(index.ProfileAt(j) == profiles[j]) << "profile " << j;
    for (double w : {0.0, 0.1, 0.5, 0.83, 1.0}) {
      const ParamVector via_profile = profiles[j].EstimateParams(w);
      const ParamVector via_index = index.EstimateParams(w, j);
      EXPECT_EQ(via_profile.quality, via_index.quality);
      EXPECT_EQ(via_profile.cost, via_index.cost);
      EXPECT_EQ(via_profile.latency, via_index.latency);
    }
  }
}

TEST(CatalogIndex, ParallelBuildMatchesSerial) {
  Rng rng(0x1DE40002ull);
  const auto profiles = RandomProfiles(rng, 1000);
  const CatalogIndex serial = CatalogIndex::Build(profiles);
  Executor executor(4);
  const CatalogIndex parallel =
      CatalogIndex::Build(profiles, &executor, /*grain=*/64);
  ASSERT_EQ(serial.size(), parallel.size());
  for (ParamAxis axis :
       {ParamAxis::kQuality, ParamAxis::kCost, ParamAxis::kLatency}) {
    EXPECT_EQ(serial.alphas(axis), parallel.alphas(axis));
    EXPECT_EQ(serial.betas(axis), parallel.betas(axis));
  }
  EXPECT_GT(serial.build_nanos(), 0u);

  // The ParallelFor-filled params block matches the serial fill too.
  std::vector<ParamVector> serial_params;
  std::vector<ParamVector> parallel_params;
  serial.EstimateParamsInto(0.37, &serial_params);
  serial.EstimateParamsInto(0.37, &parallel_params, &executor, /*grain=*/64);
  EXPECT_EQ(serial_params.size(), parallel_params.size());
  for (size_t j = 0; j < serial_params.size(); ++j) {
    EXPECT_TRUE(serial_params[j] == parallel_params[j]) << "param " << j;
  }
}

TEST(CatalogIndexProperty, WorkforceMatrixBitIdentical) {
  Rng rng(0x1DE40003ull);
  for (int trial = 0; trial < 40; ++trial) {
    const auto profiles =
        RandomProfiles(rng, static_cast<int>(rng.UniformInt(1, 60)));
    const auto requests =
        RandomRequests(rng, static_cast<int>(rng.UniformInt(1, 12)), 5);
    const CatalogIndex index = CatalogIndex::Build(profiles);
    for (WorkforcePolicy policy : {WorkforcePolicy::kMinimalWorkforce,
                                   WorkforcePolicy::kPaperMaxOfThree}) {
      const WorkforceMatrix from_profiles =
          WorkforceMatrix::Compute(requests, profiles, policy);
      const WorkforceMatrix from_index =
          WorkforceMatrix::Compute(requests, index, policy);
      ASSERT_EQ(from_profiles.num_requests(), from_index.num_requests());
      ASSERT_EQ(from_profiles.num_strategies(), from_index.num_strategies());
      for (size_t i = 0; i < from_profiles.num_requests(); ++i) {
        for (size_t j = 0; j < from_profiles.num_strategies(); ++j) {
          const WorkforceCell& a = from_profiles.At(i, j);
          const WorkforceCell& b = from_index.At(i, j);
          EXPECT_EQ(a.feasible, b.feasible) << "cell " << i << "," << j;
          EXPECT_EQ(a.requirement, b.requirement) << "cell " << i << "," << j;
        }
      }
    }
  }
}

void ExpectSameAdparOutcome(const Result<AdparResult>& classic,
                            const Result<AdparResult>& indexed,
                            const std::string& label) {
  ASSERT_EQ(classic.ok(), indexed.ok())
      << label << ": " << (classic.ok() ? indexed : classic).status().ToString();
  if (!classic.ok()) {
    EXPECT_EQ(classic.status().code(), indexed.status().code()) << label;
    return;
  }
  EXPECT_EQ(classic->alternative.quality, indexed->alternative.quality)
      << label;
  EXPECT_EQ(classic->alternative.cost, indexed->alternative.cost) << label;
  EXPECT_EQ(classic->alternative.latency, indexed->alternative.latency)
      << label;
  EXPECT_EQ(classic->squared_distance, indexed->squared_distance) << label;
  EXPECT_EQ(classic->distance, indexed->distance) << label;
  EXPECT_EQ(classic->strategies, indexed->strategies) << label;
}

TEST(CatalogIndexProperty, AdparExactIndexedBitIdentical) {
  Rng rng(0x1DE40004ull);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 150));
    const auto profiles = RandomProfiles(rng, n);
    const CatalogIndex index = CatalogIndex::Build(profiles);
    const double w = rng.Uniform();
    const auto snapshot = index.BuildSnapshot(w);
    for (int solve = 0; solve < 6; ++solve) {
      const ParamVector request{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      const int k = static_cast<int>(rng.UniformInt(1, 12));
      const auto classic = AdparExact(snapshot->params(), request, k);
      const auto indexed = AdparExact(*snapshot, request, k);
      ExpectSameAdparOutcome(
          classic, indexed,
          "n=" + std::to_string(n) + " k=" + std::to_string(k) +
              " trial=" + std::to_string(trial));
    }
  }
}

TEST(CatalogIndexProperty, AdparIndexedHandlesDuplicatesAndLargeK) {
  // Duplicated parameter vectors (cost/quality ties everywhere) and k above
  // the dominator cap (pruning disabled) must stay bit-identical too.
  Rng rng(0x1DE40005ull);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<StrategyProfile> profiles =
        RandomProfiles(rng, static_cast<int>(rng.UniformInt(2, 30)));
    const size_t base = profiles.size();
    for (size_t j = 0; j < base; ++j) {
      if (rng.Bernoulli(0.5)) profiles.push_back(profiles[j]);
    }
    const CatalogIndex index = CatalogIndex::Build(profiles);
    const auto snapshot = index.BuildSnapshot(rng.Uniform());
    const ParamVector request{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    for (int k :
         {1, 2, static_cast<int>(profiles.size()),
          static_cast<int>(kSkylineDominatorCap) + 5}) {
      ExpectSameAdparOutcome(AdparExact(snapshot->params(), request, k),
                             AdparExact(*snapshot, request, k),
                             "dup trial=" + std::to_string(trial) +
                                 " k=" + std::to_string(k));
    }
  }
}

TEST(CatalogIndexProperty, StratRecSnapshotBitIdentical) {
  workload::Generator generator({}, 0x1DE40006ull);
  Rng rng(0x1DE40007ull);
  for (int trial = 0; trial < 15; ++trial) {
    const auto profiles =
        generator.Profiles(static_cast<int>(rng.UniformInt(5, 80)));
    auto stratrec = StratRec::Create(
        api::CatalogFromProfiles(profiles).strategies, profiles);
    ASSERT_TRUE(stratrec.ok());
    const auto requests = generator.RequestsWithRanges(
        static_cast<int>(rng.UniformInt(1, 10)), 3, {0.5, 0.9}, {0.3, 1.0},
        {0.3, 1.0});
    const double w = rng.Uniform();

    StratRecOptions plain;
    plain.batch.aggregation = AggregationMode::kMax;
    auto without = stratrec->ProcessBatchAtAvailability(requests, w, plain);
    ASSERT_TRUE(without.ok()) << without.status().ToString();

    StratRecOptions with_snapshot = plain;
    auto snapshot = stratrec->aggregator().BuildSnapshot(w);
    ASSERT_TRUE(snapshot.ok());
    with_snapshot.snapshot = *snapshot;
    auto with = stratrec->ProcessBatchAtAvailability(requests, w,
                                                     with_snapshot);
    ASSERT_TRUE(with.ok()) << with.status().ToString();

    EXPECT_TRUE(*without == *with) << "trial " << trial;

    // The unindexed reference path (no SoA matrix fill) agrees too.
    StratRecOptions unindexed = plain;
    unindexed.batch.use_catalog_index = false;
    auto reference =
        stratrec->ProcessBatchAtAvailability(requests, w, unindexed);
    ASSERT_TRUE(reference.ok());
    EXPECT_TRUE(*reference == *without) << "trial " << trial;
  }
}

TEST(CatalogIndex, ParamsMaterializationIsOptInForBatchOnlyRuns) {
  workload::Generator generator({}, 0x1DE40008ull);
  const auto profiles = generator.Profiles(20);
  auto stratrec = StratRec::Create(
      api::CatalogFromProfiles(profiles).strategies, profiles);
  ASSERT_TRUE(stratrec.ok());
  const auto requests = generator.Requests(5, 3);

  StratRecOptions batch_only;
  batch_only.recommend_alternatives = false;
  auto lean = stratrec->ProcessBatchAtAvailability(requests, 0.5, batch_only);
  ASSERT_TRUE(lean.ok());
  EXPECT_TRUE(lean->aggregator.strategy_params.empty());

  batch_only.materialize_params = true;
  auto full = stratrec->ProcessBatchAtAvailability(requests, 0.5, batch_only);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->aggregator.strategy_params.size(), profiles.size());
  for (size_t j = 0; j < profiles.size(); ++j) {
    EXPECT_TRUE(full->aggregator.strategy_params[j] ==
                profiles[j].EstimateParams(0.5));
  }
  // The batch outcome itself is unaffected by the params block.
  EXPECT_TRUE(lean->aggregator.batch == full->aggregator.batch);
}

}  // namespace
}  // namespace stratrec::core

namespace stratrec::api {
namespace {

core::Catalog TestCatalog(int size, uint64_t seed) {
  workload::Generator generator({}, seed);
  return CatalogFromProfiles(generator.Profiles(size));
}

BatchRequest MixedBatch(const std::string& request_id) {
  workload::Generator generator({}, 0xFACADE01ull);
  BatchRequest batch;
  // A mix of serviceable and hopeless requests so the pipeline exercises
  // both the scheduler and the ADPaR leg.
  batch.requests = generator.RequestsWithRanges(6, 3, {0.5, 0.75}, {0.5, 1.0},
                                                {0.5, 1.0});
  auto hopeless = generator.RequestsWithRanges(3, 3, {0.97, 1.0}, {0.0, 0.05},
                                               {0.0, 0.05});
  batch.requests.insert(batch.requests.end(), hopeless.begin(),
                        hopeless.end());
  batch.availability = AvailabilitySpec::Fixed(0.62);
  batch.request_id = request_id;
  return batch;
}

TEST(SnapshotCacheFacade, WarmCacheReportsAreByteIdenticalToCold) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ServiceConfig config;
    config.execution.worker_threads = threads;
    auto service = Service::Create(TestCatalog(64, 0xFACADE02ull), config);
    ASSERT_TRUE(service.ok());

    // Same caller-assigned id on purpose: the encoded reports must match
    // byte for byte, id included.
    auto cold = service->SubmitBatch(MixedBatch("warm-vs-cold"));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    const ServiceStats after_cold = service->stats();
    EXPECT_GE(after_cold.cache_misses, 1u);

    auto warm = service->SubmitBatch(MixedBatch("warm-vs-cold"));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    const ServiceStats after_warm = service->stats();
    EXPECT_GE(after_warm.cache_hits, after_cold.cache_hits + 1);

    EXPECT_EQ(json::Dump(wire::Encode(*cold)), json::Dump(wire::Encode(*warm)))
        << "pool size " << threads;
  }
}

TEST(SnapshotCacheFacade, CountsHitsAndEvictsLeastRecentlyUsed) {
  ServiceConfig config;
  config.execution.worker_threads = 1;
  config.cache.snapshot_capacity = 2;
  config.cache.shards = 1;
  auto service = Service::Create(TestCatalog(16, 0xFACADE03ull), config);
  ASSERT_TRUE(service.ok());

  auto submit_at = [&](double w) {
    BatchRequest batch = MixedBatch("");
    batch.availability = AvailabilitySpec::Fixed(w);
    auto report = service->SubmitBatch(std::move(batch));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  };

  submit_at(0.3);  // miss
  submit_at(0.3);  // hit
  submit_at(0.6);  // miss
  submit_at(0.9);  // miss -> evicts 0.3 (LRU)
  submit_at(0.3);  // miss again
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GT(stats.index_build_nanos, 0u);
}

TEST(SnapshotCacheFacade, CapacityBoundsResidentSnapshotsAcrossShards) {
  // snapshot_capacity is a global bound: with capacity 1 the shard count is
  // clamped so distinct availabilities cannot each pin a shard-local entry.
  ServiceConfig config;
  config.execution.worker_threads = 1;
  config.cache.snapshot_capacity = 1;
  config.cache.shards = 4;
  auto service = Service::Create(TestCatalog(16, 0xFACADE06ull), config);
  ASSERT_TRUE(service.ok());

  for (double w : {0.2, 0.8, 0.2}) {
    BatchRequest batch = MixedBatch("");
    batch.availability = AvailabilitySpec::Fixed(w);
    auto report = service->SubmitBatch(std::move(batch));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  // 0.8 evicted 0.2 (only one snapshot may stay resident), so the second
  // 0.2 is a miss again.
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(SnapshotCacheFacade, QuantizationSnapsAvailabilityOntoTheGrid) {
  ServiceConfig config;
  config.execution.worker_threads = 1;
  config.cache.availability_quantum = 0.25;
  auto service = Service::Create(TestCatalog(16, 0xFACADE04ull), config);
  ASSERT_TRUE(service.ok());

  BatchRequest near_half = MixedBatch("");
  near_half.availability = AvailabilitySpec::Fixed(0.48);
  auto first = service->SubmitBatch(std::move(near_half));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->availability, 0.5);

  BatchRequest other_side = MixedBatch("");
  other_side.availability = AvailabilitySpec::Fixed(0.52);
  auto second = service->SubmitBatch(std::move(other_side));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->availability, 0.5);
  // Both sides of 0.5 land on one grid point — the second call is a hit.
  EXPECT_GE(service->stats().cache_hits, 1u);
}

TEST(SnapshotCacheFacade, DisabledCacheStillServesIdenticalReports) {
  ServiceConfig cached;
  cached.execution.worker_threads = 2;
  ServiceConfig uncached = cached;
  uncached.cache.snapshot_capacity = 0;

  auto a = Service::Create(TestCatalog(32, 0xFACADE05ull), cached);
  auto b = Service::Create(TestCatalog(32, 0xFACADE05ull), uncached);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto cached_report = a->SubmitBatch(MixedBatch("cache-toggle"));
  auto uncached_report = b->SubmitBatch(MixedBatch("cache-toggle"));
  ASSERT_TRUE(cached_report.ok());
  ASSERT_TRUE(uncached_report.ok());
  EXPECT_EQ(json::Dump(wire::Encode(*cached_report)),
            json::Dump(wire::Encode(*uncached_report)));
  EXPECT_EQ(b->stats().cache_hits, 0u);
}

}  // namespace
}  // namespace stratrec::api
