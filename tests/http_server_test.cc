// Serving-tier transport tests: the HTTP front end over a ShardRouter on
// loopback. Covers the happy path (health, stats, batch and sweep
// round-trips matching the in-process reports, keep-alive reuse) and the
// malformed-input taxonomy — truncated bodies, oversized content-length,
// bad JSON, unknown routes, wrong methods — each answered with the right
// 4xx *without* a Service ever seeing the request (asserted on the router
// counters). Admission control is exercised end to end: a parked worker
// plus a full queue turns into 429 + Retry-After on the wire.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/codec.h"
#include "src/api/registry.h"
#include "src/common/json.h"
#include "src/net/http_client.h"
#include "src/net/serving.h"

namespace stratrec::net {
namespace {

core::Catalog SmallCatalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

api::BatchRequest SmallBatch() {
  api::BatchRequest batch;
  batch.requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
  };
  batch.availability = api::AvailabilitySpec::Fixed(0.8);
  batch.aggregation = core::AggregationMode::kMax;
  batch.request_id = "http-batch-1";
  return batch;
}

struct Tier {
  ShardRouter router;
  HttpServer server;
};

RouterConfig TwoShards() {
  RouterConfig config;
  config.shards = 2;
  return config;
}

Tier StartTier(RouterConfig config = TwoShards()) {
  auto router = ShardRouter::Create(SmallCatalog(), std::move(config));
  EXPECT_TRUE(router.ok()) << router.status().ToString();
  auto server = StartServing(*router);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return Tier{*router, *server};
}

Result<HttpClient> Dial(const HttpServer& server) {
  return HttpClient::Connect("127.0.0.1", server.port());
}

TEST(HttpServer, HealthStatsAndSolvesOverOneKeepAliveConnection) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto health = client->Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "{\"status\":\"ok\"}");

  // POST /v1/batch returns exactly the in-process report bytes.
  const api::BatchRequest request = SmallBatch();
  auto expected = tier.router.SubmitBatch(request);
  ASSERT_TRUE(expected.ok());
  auto posted = client->PostJson("/v1/batch",
                                 json::Dump(wire::Encode(request)));
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  EXPECT_EQ(posted->status_code, 200);
  EXPECT_EQ(posted->body, json::Dump(wire::Encode(*expected)));

  // Same connection again: sweep.
  api::SweepRequest sweep;
  sweep.targets = {{"t1", {0.9, 0.1, 0.1}, 2}};
  sweep.availability = api::AvailabilitySpec::Fixed(0.8);
  sweep.request_id = "http-sweep-1";
  auto swept = client->PostJson("/v1/sweep",
                                json::Dump(wire::Encode(sweep)));
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_EQ(swept->status_code, 200);
  auto decoded = wire::DecodeSweepReport(json::Parse(swept->body).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, "http-sweep-1");

  // Stats travel the wire codec and reflect the traffic above.
  auto stats_response = client->Get("/v1/stats");
  ASSERT_TRUE(stats_response.ok());
  EXPECT_EQ(stats_response->status_code, 200);
  auto stats =
      wire::DecodeServiceStats(json::Parse(stats_response->body).value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches, 2u);  // in-process + HTTP
  EXPECT_EQ(stats->sweeps, 1u);
  tier.server.Stop();
}

TEST(HttpServer, SolverErrorsMapToTheRightStatusCodes) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());

  // Unknown registry algorithm -> 404 with the registry message in-body.
  api::BatchRequest request = SmallBatch();
  request.algorithm = "no-such-solver";
  auto response = client->PostJson("/v1/batch",
                                   json::Dump(wire::Encode(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);
  EXPECT_NE(response->body.find("no-such-solver"), std::string::npos);

  // Invalid request contents (k < 1) -> 400.
  request = SmallBatch();
  request.requests[0].k = 0;
  response = client->PostJson("/v1/batch",
                              json::Dump(wire::Encode(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
}

// ---------------------------------------------------------------------------
// Malformed transport input: the right 4xx, and no Service involvement.
// ---------------------------------------------------------------------------

void ExpectNoSolverTraffic(const ShardRouter& router) {
  const api::ServiceStats stats = router.stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_EQ(stats.requests_processed, 0u);
}

TEST(HttpServer, TruncatedBodyIsA400WithoutTouchingAService) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/batch HTTP/1.1\r\n"
                            "Content-Length: 1000\r\n\r\n"
                            "only a few bytes")
                  .ok());
  client->FinishSending();  // EOF mid-body
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
  EXPECT_NE(response->body.find("truncated body"), std::string::npos);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, OversizedContentLengthIsA413BeforeTheBodyIsRead) {
  auto router = ShardRouter::Create(SmallCatalog(), TwoShards());
  ASSERT_TRUE(router.ok());
  HttpServerConfig http;
  http.max_body_bytes = 1024;
  auto server = StartServing(*router, http);
  ASSERT_TRUE(server.ok());

  auto client = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  // Declare far more than the cap; never send the body at all — the
  // refusal must not wait for it.
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/batch HTTP/1.1\r\n"
                            "Content-Length: 10485760\r\n\r\n")
                  .ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 413);
  server->Stop();
  ExpectNoSolverTraffic(*router);
}

TEST(HttpServer, MalformedHeadIsA400) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("NONSENSE\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, BadJsonBodyIsA400WithoutASolve) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  auto response = client->PostJson("/v1/batch", "this is not json{{{");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  // A schema mismatch after valid JSON is also a 400.
  response = client->PostJson("/v1/batch", "{\"unexpected\":true}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, UnknownRoutesAndWrongMethods) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());

  auto response = client->Get("/v1/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);

  response = client->PostJson("/healthz", "{}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 405);
  ASSERT_NE(response->FindHeader("Allow"), nullptr);
  EXPECT_EQ(*response->FindHeader("Allow"), "GET");

  response = client->Get("/v1/batch");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 405);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

// ---------------------------------------------------------------------------
// Admission control end to end.
// ---------------------------------------------------------------------------

// A registry batch solver that parks its caller until released, so the
// router's queue depth is controllable from the test (same idiom as
// journal_test.cc).
struct AdmissionGate {
  std::mutex mutex;
  std::condition_variable cv;
  int entered = 0;
  bool released = false;
};
AdmissionGate& Gate() {
  static AdmissionGate* gate = new AdmissionGate();
  return *gate;
}

TEST(HttpServer, SaturatedQueueAnswers429WithRetryAfter) {
  ASSERT_TRUE(api::AlgorithmRegistry::Global()
                  .RegisterBatch(
                      "http-gate",
                      [](const std::vector<core::DeploymentRequest>& requests,
                         const std::vector<core::StrategyProfile>&, double,
                         const core::BatchOptions&)
                          -> Result<core::BatchResult> {
                        AdmissionGate& gate = Gate();
                        std::unique_lock<std::mutex> lock(gate.mutex);
                        ++gate.entered;
                        gate.cv.notify_all();
                        gate.cv.wait(lock,
                                     [&gate]() { return gate.released; });
                        core::BatchResult result;
                        result.outcomes.resize(requests.size());
                        return result;
                      })
                  .ok());

  RouterConfig config;
  config.shards = 1;
  config.router_threads = 1;   // one worker: the gate parks the whole pool
  config.max_queue_depth = 1;  // one queued job saturates admission
  Tier tier = StartTier(config);

  api::BatchRequest gated = SmallBatch();
  gated.algorithm = "http-gate";
  gated.recommend_alternatives = false;
  const std::string gated_body = json::Dump(wire::Encode(gated));

  // First request occupies the worker (parked in the gate)...
  auto first = Dial(tier.server);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->SendRaw(SerializeRequest([&]() {
                HttpRequest r;
                r.method = "POST";
                r.target = "/v1/batch";
                r.body = gated_body;
                return r;
              }()))
                  .ok());
  {
    AdmissionGate& gate = Gate();
    std::unique_lock<std::mutex> lock(gate.mutex);
    gate.cv.wait(lock, [&gate]() { return gate.entered >= 1; });
  }

  // ...the second is admitted (depth 0 at probe time) and queues...
  auto second = Dial(tier.server);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->SendRaw(SerializeRequest([&]() {
                HttpRequest r;
                r.method = "POST";
                r.target = "/v1/batch";
                r.body = gated_body;
                return r;
              }()))
                  .ok());
  while (tier.router.stats().queue_depth < 1) std::this_thread::yield();

  // ...and the third hits the ceiling: 429 + Retry-After, body unparsed.
  auto third = Dial(tier.server);
  ASSERT_TRUE(third.ok());
  auto rejected = third->PostJson("/v1/batch", gated_body);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status_code, 429);
  ASSERT_NE(rejected->FindHeader("Retry-After"), nullptr);
  EXPECT_EQ(*rejected->FindHeader("Retry-After"), "1");

  {
    std::lock_guard<std::mutex> lock(Gate().mutex);
    Gate().released = true;
  }
  Gate().cv.notify_all();

  auto first_response = first->ReadResponse();
  ASSERT_TRUE(first_response.ok()) << first_response.status().ToString();
  EXPECT_EQ(first_response->status_code, 200);
  auto second_response = second->ReadResponse();
  ASSERT_TRUE(second_response.ok());
  EXPECT_EQ(second_response->status_code, 200);

  const api::ServiceStats stats = tier.router.stats();
  EXPECT_EQ(stats.rejected_requests, 1u);
  EXPECT_EQ(stats.retry_after_hints, 1u);
  EXPECT_EQ(stats.batches, 2u);
  tier.server.Stop();
}

}  // namespace
}  // namespace stratrec::net
