// Serving-tier transport tests: the HTTP front end over a ShardRouter on
// loopback. Covers the happy path (health, stats, batch and sweep
// round-trips matching the in-process reports, keep-alive reuse) and the
// malformed-input taxonomy — truncated bodies, oversized content-length,
// bad JSON, unknown routes, wrong methods — each answered with the right
// 4xx *without* a Service ever seeing the request (asserted on the router
// counters). Admission control is exercised end to end: a parked worker
// plus a full queue turns into 429 + Retry-After on the wire. The
// fault-tolerance surface rides the same harness: graceful drain on Stop,
// X-Stratrec-Deadline-Ms (400 on garbage, 504 past budget), and the
// RetryingHttpClient against injected connection drops — which must retry
// transport failures but never 5xx.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/codec.h"
#include "src/api/registry.h"
#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/net/http_client.h"
#include "src/net/serving.h"

namespace stratrec::net {
namespace {

core::Catalog SmallCatalog() {
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},
  };
  return catalog;
}

api::BatchRequest SmallBatch() {
  api::BatchRequest batch;
  batch.requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
  };
  batch.availability = api::AvailabilitySpec::Fixed(0.8);
  batch.aggregation = core::AggregationMode::kMax;
  batch.request_id = "http-batch-1";
  return batch;
}

struct Tier {
  ShardRouter router;
  HttpServer server;
};

RouterConfig TwoShards() {
  RouterConfig config;
  config.shards = 2;
  return config;
}

Tier StartTier(RouterConfig config = TwoShards()) {
  auto router = ShardRouter::Create(SmallCatalog(), std::move(config));
  EXPECT_TRUE(router.ok()) << router.status().ToString();
  auto server = StartServing(*router);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return Tier{*router, *server};
}

Result<HttpClient> Dial(const HttpServer& server) {
  return HttpClient::Connect("127.0.0.1", server.port());
}

TEST(HttpServer, HealthStatsAndSolvesOverOneKeepAliveConnection) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto health = client->Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "{\"status\":\"ok\"}");

  // POST /v1/batch returns exactly the in-process report bytes.
  const api::BatchRequest request = SmallBatch();
  auto expected = tier.router.SubmitBatch(request);
  ASSERT_TRUE(expected.ok());
  auto posted = client->PostJson("/v1/batch",
                                 json::Dump(wire::Encode(request)));
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  EXPECT_EQ(posted->status_code, 200);
  EXPECT_EQ(posted->body, json::Dump(wire::Encode(*expected)));

  // Same connection again: sweep.
  api::SweepRequest sweep;
  sweep.targets = {{"t1", {0.9, 0.1, 0.1}, 2}};
  sweep.availability = api::AvailabilitySpec::Fixed(0.8);
  sweep.request_id = "http-sweep-1";
  auto swept = client->PostJson("/v1/sweep",
                                json::Dump(wire::Encode(sweep)));
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_EQ(swept->status_code, 200);
  auto decoded = wire::DecodeSweepReport(json::Parse(swept->body).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, "http-sweep-1");

  // Stats travel the wire codec and reflect the traffic above.
  auto stats_response = client->Get("/v1/stats");
  ASSERT_TRUE(stats_response.ok());
  EXPECT_EQ(stats_response->status_code, 200);
  auto stats =
      wire::DecodeServiceStats(json::Parse(stats_response->body).value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches, 2u);  // in-process + HTTP
  EXPECT_EQ(stats->sweeps, 1u);
  tier.server.Stop();
}

TEST(HttpServer, SolverErrorsMapToTheRightStatusCodes) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());

  // Unknown registry algorithm -> 404 with the registry message in-body.
  api::BatchRequest request = SmallBatch();
  request.algorithm = "no-such-solver";
  auto response = client->PostJson("/v1/batch",
                                   json::Dump(wire::Encode(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);
  EXPECT_NE(response->body.find("no-such-solver"), std::string::npos);

  // Invalid request contents (k < 1) -> 400.
  request = SmallBatch();
  request.requests[0].k = 0;
  response = client->PostJson("/v1/batch",
                              json::Dump(wire::Encode(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
}

// ---------------------------------------------------------------------------
// Malformed transport input: the right 4xx, and no Service involvement.
// ---------------------------------------------------------------------------

void ExpectNoSolverTraffic(const ShardRouter& router) {
  const api::ServiceStats stats = router.stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_EQ(stats.requests_processed, 0u);
}

TEST(HttpServer, TruncatedBodyIsA400WithoutTouchingAService) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/batch HTTP/1.1\r\n"
                            "Content-Length: 1000\r\n\r\n"
                            "only a few bytes")
                  .ok());
  client->FinishSending();  // EOF mid-body
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
  EXPECT_NE(response->body.find("truncated body"), std::string::npos);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, OversizedContentLengthIsA413BeforeTheBodyIsRead) {
  auto router = ShardRouter::Create(SmallCatalog(), TwoShards());
  ASSERT_TRUE(router.ok());
  HttpServerConfig http;
  http.max_body_bytes = 1024;
  auto server = StartServing(*router, http);
  ASSERT_TRUE(server.ok());

  auto client = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  // Declare far more than the cap; never send the body at all — the
  // refusal must not wait for it.
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/batch HTTP/1.1\r\n"
                            "Content-Length: 10485760\r\n\r\n")
                  .ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 413);
  server->Stop();
  ExpectNoSolverTraffic(*router);
}

TEST(HttpServer, MalformedHeadIsA400) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("NONSENSE\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, BadJsonBodyIsA400WithoutASolve) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  auto response = client->PostJson("/v1/batch", "this is not json{{{");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  // A schema mismatch after valid JSON is also a 400.
  response = client->PostJson("/v1/batch", "{\"unexpected\":true}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

TEST(HttpServer, UnknownRoutesAndWrongMethods) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());

  auto response = client->Get("/v1/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);

  response = client->PostJson("/healthz", "{}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 405);
  ASSERT_NE(response->FindHeader("Allow"), nullptr);
  EXPECT_EQ(*response->FindHeader("Allow"), "GET");

  response = client->Get("/v1/batch");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 405);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

// ---------------------------------------------------------------------------
// Admission control end to end.
// ---------------------------------------------------------------------------

// A registry batch solver that parks its caller until released, so the
// router's queue depth is controllable from the test (same idiom as
// journal_test.cc).
struct AdmissionGate {
  std::mutex mutex;
  std::condition_variable cv;
  int entered = 0;
  bool released = false;
};
AdmissionGate& Gate() {
  static AdmissionGate* gate = new AdmissionGate();
  return *gate;
}

TEST(HttpServer, SaturatedQueueAnswers429WithRetryAfter) {
  ASSERT_TRUE(api::AlgorithmRegistry::Global()
                  .RegisterBatch(
                      "http-gate",
                      [](const std::vector<core::DeploymentRequest>& requests,
                         const std::vector<core::StrategyProfile>&, double,
                         const core::BatchOptions&)
                          -> Result<core::BatchResult> {
                        AdmissionGate& gate = Gate();
                        std::unique_lock<std::mutex> lock(gate.mutex);
                        ++gate.entered;
                        gate.cv.notify_all();
                        gate.cv.wait(lock,
                                     [&gate]() { return gate.released; });
                        core::BatchResult result;
                        result.outcomes.resize(requests.size());
                        return result;
                      })
                  .ok());

  RouterConfig config;
  config.shards = 1;
  config.router_threads = 1;   // one worker: the gate parks the whole pool
  config.max_queue_depth = 1;  // one queued job saturates admission
  Tier tier = StartTier(config);

  api::BatchRequest gated = SmallBatch();
  gated.algorithm = "http-gate";
  gated.recommend_alternatives = false;
  const std::string gated_body = json::Dump(wire::Encode(gated));

  // First request occupies the worker (parked in the gate)...
  auto first = Dial(tier.server);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->SendRaw(SerializeRequest([&]() {
                HttpRequest r;
                r.method = "POST";
                r.target = "/v1/batch";
                r.body = gated_body;
                return r;
              }()))
                  .ok());
  {
    AdmissionGate& gate = Gate();
    std::unique_lock<std::mutex> lock(gate.mutex);
    gate.cv.wait(lock, [&gate]() { return gate.entered >= 1; });
  }

  // ...the second is admitted (depth 0 at probe time) and queues...
  auto second = Dial(tier.server);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->SendRaw(SerializeRequest([&]() {
                HttpRequest r;
                r.method = "POST";
                r.target = "/v1/batch";
                r.body = gated_body;
                return r;
              }()))
                  .ok());
  while (tier.router.stats().queue_depth < 1) std::this_thread::yield();

  // ...and the third hits the ceiling: 429 + Retry-After, body unparsed.
  auto third = Dial(tier.server);
  ASSERT_TRUE(third.ok());
  auto rejected = third->PostJson("/v1/batch", gated_body);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status_code, 429);
  ASSERT_NE(rejected->FindHeader("Retry-After"), nullptr);
  EXPECT_EQ(*rejected->FindHeader("Retry-After"), "1");

  {
    std::lock_guard<std::mutex> lock(Gate().mutex);
    Gate().released = true;
  }
  Gate().cv.notify_all();

  auto first_response = first->ReadResponse();
  ASSERT_TRUE(first_response.ok()) << first_response.status().ToString();
  EXPECT_EQ(first_response->status_code, 200);
  auto second_response = second->ReadResponse();
  ASSERT_TRUE(second_response.ok());
  EXPECT_EQ(second_response->status_code, 200);

  const api::ServiceStats stats = tier.router.stats();
  EXPECT_EQ(stats.rejected_requests, 1u);
  EXPECT_EQ(stats.retry_after_hints, 1u);
  EXPECT_EQ(stats.batches, 2u);

  // The hint is visible through the wire-codec stats fold: GET /v1/stats
  // must carry the same retry_after_hints counter (the 429 path end to end).
  auto stats_client = Dial(tier.server);
  ASSERT_TRUE(stats_client.ok());
  auto stats_response = stats_client->Get("/v1/stats");
  ASSERT_TRUE(stats_response.ok()) << stats_response.status().ToString();
  ASSERT_EQ(stats_response->status_code, 200);
  auto decoded_stats =
      wire::DecodeServiceStats(json::Parse(stats_response->body).value());
  ASSERT_TRUE(decoded_stats.ok()) << decoded_stats.status().ToString();
  EXPECT_EQ(decoded_stats->retry_after_hints, 1u);
  EXPECT_EQ(decoded_stats->rejected_requests, 1u);
  tier.server.Stop();
}

// ---------------------------------------------------------------------------
// Graceful drain, deadlines on the wire, and the retrying client.
// ---------------------------------------------------------------------------

/// A second parking gate with its own registry backend ("park-gate") so
/// these tests don't disturb the admission test's gate, plus per-test Reset.
struct ParkGate {
  std::mutex mutex;
  std::condition_variable cv;
  int entered = 0;
  bool released = false;

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this]() { return entered >= 1; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      released = true;
    }
    cv.notify_all();
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex);
    entered = 0;
    released = false;
  }
};
ParkGate& Park() {
  static ParkGate* gate = new ParkGate();
  return *gate;
}

void RegisterParkBackendOnce() {
  static const bool registered = []() {
    return api::AlgorithmRegistry::Global()
        .RegisterBatch(
            "park-gate",
            [](const std::vector<core::DeploymentRequest>& requests,
               const std::vector<core::StrategyProfile>&, double,
               const core::BatchOptions&) -> Result<core::BatchResult> {
              ParkGate& gate = Park();
              std::unique_lock<std::mutex> lock(gate.mutex);
              ++gate.entered;
              gate.cv.notify_all();
              gate.cv.wait(lock, [&gate]() { return gate.released; });
              core::BatchResult result;
              result.outcomes.resize(requests.size());
              return result;
            })
        .ok();
  }();
  ASSERT_TRUE(registered);
}

api::BatchRequest ParkedBatch() {
  api::BatchRequest batch = SmallBatch();
  batch.algorithm = "park-gate";
  batch.recommend_alternatives = false;
  return batch;
}

std::string PostBytes(const std::string& target, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = body;
  return SerializeRequest(request);
}

// Stop() must refuse new connects immediately but let already-pipelined
// requests complete and flush in order — the peer is owed both responses.
TEST(HttpServerDrain, StopFlushesPipelinedResponsesAndRefusesNewConnects) {
  RegisterParkBackendOnce();
  Park().Reset();

  RouterConfig config;
  config.shards = 1;
  config.router_threads = 1;
  Tier tier = StartTier(config);

  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());
  // Pipeline two requests on one connection: the first parks the pool
  // worker, the second (healthz) completes inline but must queue behind it.
  const std::string pipelined =
      PostBytes("/v1/batch", json::Dump(wire::Encode(ParkedBatch()))) +
      "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  ASSERT_TRUE(client->SendRaw(pipelined).ok());
  Park().AwaitEntered();

  std::thread stopper([&tier]() { tier.server.Stop(); });
  // Stop closes the listener before touching connections: a connect racing
  // the drain window must be refused while the parked work is still owed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Dial(tier.server).ok());

  Park().Release();
  stopper.join();

  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);
  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status_code, 200);
  EXPECT_EQ(second->body, "{\"status\":\"ok\"}");
}

TEST(HttpDeadline, MalformedDeadlineHeaderIsA400) {
  Tier tier = StartTier();
  auto client = Dial(tier.server);
  ASSERT_TRUE(client.ok());

  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/batch";
  request.AddHeader("X-Stratrec-Deadline-Ms", "soon-ish");
  request.body = json::Dump(wire::Encode(SmallBatch()));
  auto response = client->RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
  EXPECT_NE(response->body.find("X-Stratrec-Deadline-Ms"), std::string::npos);

  request.headers.clear();
  request.AddHeader("X-Stratrec-Deadline-Ms", "-5");
  response = client->RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);
  tier.server.Stop();
  ExpectNoSolverTraffic(tier.router);
}

// An expired deadline surfaces as 504 Gateway Timeout on the wire, and the
// header overrides the body's deadline_ms.
TEST(HttpDeadline, ExpiredHeaderDeadlineIsA504) {
  RegisterParkBackendOnce();
  Park().Reset();

  RouterConfig config;
  config.shards = 1;
  config.router_threads = 1;
  Tier tier = StartTier(config);

  auto parked = Dial(tier.server);
  ASSERT_TRUE(parked.ok());
  ASSERT_TRUE(
      parked
          ->SendRaw(PostBytes("/v1/batch",
                              json::Dump(wire::Encode(ParkedBatch()))))
          .ok());
  Park().AwaitEntered();

  auto doomed = Dial(tier.server);
  ASSERT_TRUE(doomed.ok());
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/batch";
  request.AddHeader("X-Stratrec-Deadline-Ms", "5");
  request.body = json::Dump(wire::Encode(SmallBatch()));
  ASSERT_TRUE(doomed->SendRaw(SerializeRequest(request)).ok());

  // Hold the queue past the 5ms budget before freeing the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Park().Release();

  auto response = doomed->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 504);
  EXPECT_NE(response->body.find("DeadlineExceeded"), std::string::npos);

  auto parked_response = parked->ReadResponse();
  ASSERT_TRUE(parked_response.ok());
  EXPECT_EQ(parked_response->status_code, 200);
  EXPECT_EQ(tier.router.stats().deadline_exceeded, 1u);
  tier.server.Stop();
}

TEST(RetryingClient, BackoffScheduleIsDeterministicAndJittered) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.max_backoff_ms = 250.0;
  policy.seed = 42;
  for (uint64_t sequence = 0; sequence < 4; ++sequence) {
    for (size_t attempt = 0; attempt < 6; ++attempt) {
      const double wait =
          RetryingHttpClient::BackoffMs(policy, sequence, attempt);
      EXPECT_EQ(wait, RetryingHttpClient::BackoffMs(policy, sequence, attempt));
      const double cap =
          std::min(10.0 * std::pow(2.0, static_cast<double>(attempt)), 250.0);
      EXPECT_GE(wait, cap * 0.5);
      EXPECT_LT(wait, cap);
    }
  }
  // A different seed reshuffles the jitter.
  RetryPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(RetryingHttpClient::BackoffMs(policy, 0, 0),
            RetryingHttpClient::BackoffMs(other, 0, 0));
}

TEST(RetryingClient, ReconnectsAndRetriesThroughInjectedConnectionDrops) {
  Tier tier = StartTier();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 4.0;
  RetryingHttpClient client("127.0.0.1", tier.server.port(), policy);

  auto healthy = client.Get("/healthz");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->status_code, 200);
  EXPECT_EQ(client.retries(), 0u);

  // Every framed request dropped: the client burns its whole budget and
  // reports the transport failure instead of hanging or lying.
  fault::InstallGlobalFaultPlan(
      {0xD20, {{std::string(fault::kSiteHttpDrop), {1.0, 0.0}}}});
  auto dropped = client.Get("/healthz");
  EXPECT_FALSE(dropped.ok());
  EXPECT_EQ(client.retries(), 2u);  // max_attempts - 1

  // Faults cleared: the next request reconnects and succeeds.
  fault::ClearGlobalFaultPlan();
  auto recovered = client.Get("/healthz");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->status_code, 200);
  tier.server.Stop();
}

// Real 5xx must pass through unretried — masking them would hide every
// genuine failure behind the retry budget (and break the chaos bench's
// injected-fault accounting).
TEST(RetryingClient, DoesNotRetryServerErrors) {
  // replicas = 1 and a dead replica: every scatter fails with the tagged
  // injected error and there is nowhere to fail over to.
  fault::InstallGlobalFaultPlan(
      {0xD21, {{std::string(fault::kSiteRouterReplica), {1.0, 0.0}}}});
  Tier tier = StartTier();
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryingHttpClient client("127.0.0.1", tier.server.port(), policy);

  auto response =
      client.PostJson("/v1/batch", json::Dump(wire::Encode(SmallBatch())));
  fault::ClearGlobalFaultPlan();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 500);
  EXPECT_NE(response->body.find("[injected]"), std::string::npos);
  EXPECT_EQ(client.retries(), 0u);
  tier.server.Stop();
}

}  // namespace
}  // namespace stratrec::net
