// End-to-end checks against the paper's worked Example 1 (Table 1) and the
// Section 2.2 / Section 4 walkthroughs.
#include <gtest/gtest.h>

#include "src/core/adpar.h"
#include "src/core/adpar_baselines.h"
#include "src/core/types.h"

namespace stratrec::core {
namespace {

// Table 1: strategies s1..s4 as (quality, cost, latency).
std::vector<ParamVector> Table1Strategies() {
  return {
      {0.50, 0.25, 0.28},  // s1 = SIM-COL-CRO
      {0.75, 0.33, 0.28},  // s2 = SEQ-IND-CRO
      {0.80, 0.50, 0.14},  // s3 = SIM-IND-CRO
      {0.88, 0.58, 0.14},  // s4 = SIM-IND-HYB
  };
}

constexpr ParamVector kD1{0.4, 0.17, 0.28};
constexpr ParamVector kD2{0.8, 0.20, 0.28};
constexpr ParamVector kD3{0.7, 0.83, 0.28};

TEST(PaperExample, D3IsDirectlySatisfiable) {
  const auto strategies = Table1Strategies();
  // Section 2.2: "only d3 could be fully served and s2, s3, s4 are
  // recommended".
  std::vector<size_t> suitable;
  for (size_t j = 0; j < strategies.size(); ++j) {
    if (Satisfies(strategies[j], kD3)) suitable.push_back(j);
  }
  EXPECT_EQ(suitable, (std::vector<size_t>{1, 2, 3}));
}

TEST(PaperExample, D1AndD2AreNotSatisfiableWithKThree) {
  const auto strategies = Table1Strategies();
  for (const ParamVector& d : {kD1, kD2}) {
    int covered = 0;
    for (const auto& s : strategies) covered += Satisfies(s, d) ? 1 : 0;
    EXPECT_LT(covered, 3) << d.ToString();
  }
}

TEST(PaperExample, AdparRecoversPaperAlternativeForD1) {
  // Section 2.3: "For d1, the alternative recommendation should be
  // (0.4, 0.5, 0.28) with three strategies s1, s2, s3."
  const auto strategies = Table1Strategies();
  auto result = AdparExact(strategies, kD1, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->alternative.quality, 0.4, 1e-12);
  EXPECT_NEAR(result->alternative.cost, 0.5, 1e-12);
  EXPECT_NEAR(result->alternative.latency, 0.28, 1e-12);
  EXPECT_EQ(result->strategies, (std::vector<size_t>{0, 1, 2}));
  EXPECT_NEAR(result->squared_distance, 0.33 * 0.33, 1e-12);
}

TEST(PaperExample, AdparOptimalForD2BeatsThePapersStatedAlternative) {
  // Section 4.1 claims d2's alternative is (0.75, 0.5, 0.28) covering
  // {s1, s2, s3}; that box actually covers only {s2, s3} (s1.quality = 0.5
  // < 0.75), so it is not a valid k = 3 answer. The true optimum under
  // Equation 3 is (0.75, 0.58, 0.28) covering {s2, s3, s4}:
  //   quality 0.8 -> 0.75 (min quality of the subset), cost 0.2 -> 0.58
  //   (max cost), latency unchanged. Distance^2 = 0.05^2 + 0.38^2 = 0.1469.
  const auto strategies = Table1Strategies();
  auto result = AdparExact(strategies, kD2, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->alternative.quality, 0.75, 1e-12);
  EXPECT_NEAR(result->alternative.cost, 0.58, 1e-12);
  EXPECT_NEAR(result->alternative.latency, 0.28, 1e-12);
  EXPECT_NEAR(result->squared_distance, 0.1469, 1e-12);
  EXPECT_EQ(result->strategies, (std::vector<size_t>{1, 2, 3}));

  // The paper's stated box indeed covers only two strategies.
  const ParamVector papers_claim{0.75, 0.5, 0.28};
  int covered = 0;
  for (const auto& s : strategies) covered += Satisfies(s, papers_claim) ? 1 : 0;
  EXPECT_EQ(covered, 2);

  // And brute force agrees with the sweep.
  auto brute = AdparBrute(strategies, kD2, 3);
  ASSERT_TRUE(brute.ok());
  EXPECT_DOUBLE_EQ(brute->squared_distance, result->squared_distance);
}

TEST(PaperExample, AdparTraceMatchesTable3Relaxations) {
  // Table 3 (step 1) lists the per-strategy relaxation each parameter of d2
  // requires: cost {0.3, 0.05... wait — the paper's Table 3 is for d2 with
  // cost relaxations {0.05, 0.13, 0.3, 0.38} across strategies; verify the
  // relaxation machinery against the unambiguous entries: quality needs no
  // relaxation for s3/s4 (quality >= 0.8) and cost needs s.cost - 0.2.
  const auto strategies = Table1Strategies();
  AdparTrace trace;
  auto result = AdparExact(strategies, kD2, 3, &trace);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(trace.relaxations.size(), 4u);

  auto axis = [](ParamAxis a) { return static_cast<int>(a); };
  // Quality relaxation = max(0, d.quality - s.quality).
  EXPECT_NEAR(trace.relaxations[0].by_axis[axis(ParamAxis::kQuality)], 0.30,
              1e-12);
  EXPECT_NEAR(trace.relaxations[1].by_axis[axis(ParamAxis::kQuality)], 0.05,
              1e-12);
  EXPECT_NEAR(trace.relaxations[2].by_axis[axis(ParamAxis::kQuality)], 0.0,
              1e-12);
  EXPECT_NEAR(trace.relaxations[3].by_axis[axis(ParamAxis::kQuality)], 0.0,
              1e-12);
  // Cost relaxation = max(0, s.cost - d.cost).
  EXPECT_NEAR(trace.relaxations[0].by_axis[axis(ParamAxis::kCost)], 0.05,
              1e-12);
  EXPECT_NEAR(trace.relaxations[1].by_axis[axis(ParamAxis::kCost)], 0.13,
              1e-12);
  EXPECT_NEAR(trace.relaxations[2].by_axis[axis(ParamAxis::kCost)], 0.30,
              1e-12);
  EXPECT_NEAR(trace.relaxations[3].by_axis[axis(ParamAxis::kCost)], 0.38,
              1e-12);
  // Latency needs no relaxation anywhere (all <= 0.28).
  for (const auto& rel : trace.relaxations) {
    EXPECT_DOUBLE_EQ(rel.by_axis[axis(ParamAxis::kLatency)], 0.0);
  }
  // Step 2: sorted relaxations are non-decreasing.
  for (size_t i = 1; i < trace.sorted.size(); ++i) {
    EXPECT_LE(trace.sorted[i - 1].relaxation, trace.sorted[i].relaxation);
  }
}

TEST(PaperExample, IntroPmfExpectation) {
  // Section 1: 70% chance of 7% of workers + 30% chance of 2% -> 5.5%.
  // (Exercised via the availability model in availability_test.cc; here we
  // just sanity-check the arithmetic the paper uses.)
  EXPECT_NEAR(0.7 * 0.07 + 0.3 * 0.02, 0.055, 1e-12);
}

}  // namespace
}  // namespace stratrec::core
