// Tests for the operation-level collaborative-document simulator: document
// semantics, session semantics per Structure/Organization, and the emergent
// edit-war effect.
#include <gtest/gtest.h>

#include "src/platform/collab_doc.h"
#include "src/stats/descriptive.h"

namespace stratrec::platform {
namespace {

core::StageSpec Stage(const char* name) {
  return core::ParseStageName(name).value();
}

TEST(CollabDocument, AppliesAndLogs) {
  CollabDocument doc(3);
  EXPECT_EQ(doc.num_segments(), 3u);
  EXPECT_FALSE(doc.SegmentWritten(0));
  EXPECT_DOUBLE_EQ(doc.MeanQuality(), 0.0);

  EditOperation create;
  create.worker_id = 1;
  create.segment = 0;
  create.kind = EditOperation::Kind::kCreate;
  create.resulting_quality = 0.6;
  ASSERT_TRUE(doc.Apply(create).ok());
  EXPECT_TRUE(doc.SegmentWritten(0));
  EXPECT_DOUBLE_EQ(doc.SegmentQuality(0), 0.6);
  EXPECT_NEAR(doc.MeanQuality(), 0.2, 1e-12);

  EditOperation refine = create;
  refine.kind = EditOperation::Kind::kRefine;
  refine.resulting_quality = 0.8;
  ASSERT_TRUE(doc.Apply(refine).ok());
  EXPECT_DOUBLE_EQ(doc.SegmentQuality(0), 0.8);
  EXPECT_EQ(doc.log().size(), 2u);
  EXPECT_EQ(doc.CountOverrides(), 0);
}

TEST(CollabDocument, ValidatesOperations) {
  CollabDocument doc(1);
  EditOperation op;
  op.segment = 5;
  op.kind = EditOperation::Kind::kCreate;
  EXPECT_EQ(doc.Apply(op).code(), StatusCode::kOutOfRange);

  op.segment = 0;
  op.kind = EditOperation::Kind::kRefine;
  EXPECT_EQ(doc.Apply(op).code(), StatusCode::kFailedPrecondition);

  op.kind = EditOperation::Kind::kCreate;
  ASSERT_TRUE(doc.Apply(op).ok());
  EXPECT_EQ(doc.Apply(op).code(), StatusCode::kFailedPrecondition);
}

TEST(CollabDocument, QualityClamped) {
  CollabDocument doc(1);
  EditOperation op;
  op.segment = 0;
  op.kind = EditOperation::Kind::kCreate;
  op.resulting_quality = 1.7;
  ASSERT_TRUE(doc.Apply(op).ok());
  EXPECT_DOUBLE_EQ(doc.SegmentQuality(0), 1.0);
}

TEST(RunSession, Validation) {
  CollabDocument doc(3);
  Rng rng(1);
  EXPECT_FALSE(RunSession(Stage("SEQ-COL-CRO"), {}, true, {}, &doc, &rng).ok());
  CollabDocument empty(0);
  EXPECT_FALSE(
      RunSession(Stage("SEQ-COL-CRO"), {0.8}, true, {}, &empty, &rng).ok());
  EXPECT_FALSE(
      RunSession(Stage("SEQ-COL-CRO"), {0.8}, true, {}, nullptr, &rng).ok());
}

TEST(RunSession, SequentialCollaborativeNeverConflicts) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    CollabDocument doc(3);
    auto outcome = RunSession(Stage("SEQ-COL-CRO"), {0.9, 0.8, 0.85}, false,
                              {}, &doc, &rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->num_overrides, 0);
    EXPECT_EQ(outcome->num_edits, 9);  // 3 workers x 3 segments
    EXPECT_GT(outcome->quality, 0.0);
  }
}

TEST(RunSession, UnguidedSimColProducesOverrides) {
  Rng rng(3);
  int unguided_overrides = 0, guided_overrides = 0;
  for (int trial = 0; trial < 200; ++trial) {
    CollabDocument unguided_doc(3), guided_doc(3);
    auto unguided = RunSession(Stage("SIM-COL-CRO"), {0.9, 0.85, 0.8, 0.9},
                               false, {}, &unguided_doc, &rng);
    auto guided = RunSession(Stage("SIM-COL-CRO"), {0.9, 0.85, 0.8, 0.9},
                             true, {}, &guided_doc, &rng);
    ASSERT_TRUE(unguided.ok());
    ASSERT_TRUE(guided.ok());
    unguided_overrides += unguided->num_overrides;
    guided_overrides += guided->num_overrides;
  }
  EXPECT_GT(unguided_overrides, 2 * guided_overrides);
  EXPECT_GT(unguided_overrides, 0);
}

TEST(RunSession, EditWarDegradesQuality) {
  Rng rng(4);
  std::vector<double> guided_quality, unguided_quality;
  for (int trial = 0; trial < 300; ++trial) {
    CollabDocument guided_doc(3), unguided_doc(3);
    auto guided = RunSession(Stage("SIM-COL-CRO"), {0.9, 0.9, 0.9}, true, {},
                             &guided_doc, &rng);
    auto unguided = RunSession(Stage("SIM-COL-CRO"), {0.9, 0.9, 0.9}, false,
                               {}, &unguided_doc, &rng);
    ASSERT_TRUE(guided.ok());
    ASSERT_TRUE(unguided.ok());
    guided_quality.push_back(guided->quality);
    unguided_quality.push_back(unguided->quality);
  }
  EXPECT_GT(stats::Mean(guided_quality).value(),
            stats::Mean(unguided_quality).value() + 0.01);
}

TEST(RunSession, IndependentKeepsBestCopyWithoutConflicts) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    CollabDocument doc(2);
    auto outcome = RunSession(Stage("SIM-IND-CRO"), {0.95, 0.4, 0.6}, false,
                              {}, &doc, &rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->num_overrides, 0);
    // Total edits span all three private copies.
    EXPECT_EQ(outcome->num_edits, 6);
    // The winning copy is at least as good as a weak worker's solo output.
    EXPECT_GT(outcome->quality, 0.4);
  }
}

TEST(RunSession, MoreSkilledCrowdYieldsHigherQuality) {
  Rng rng(6);
  stats::RunningStats strong, weak;
  for (int trial = 0; trial < 200; ++trial) {
    CollabDocument strong_doc(3), weak_doc(3);
    auto s = RunSession(Stage("SEQ-IND-CRO"), {0.95, 0.95, 0.95}, true, {},
                        &strong_doc, &rng);
    auto w = RunSession(Stage("SEQ-IND-CRO"), {0.55, 0.55, 0.55}, true, {},
                        &weak_doc, &rng);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(w.ok());
    strong.Add(s->quality);
    weak.Add(w->quality);
  }
  EXPECT_GT(strong.mean(), weak.mean() + 0.2);
}

TEST(RunSession, RefinementIsMonotoneForSequentialWork) {
  // In a sequential collaborative session every operation after the create
  // is an informed refine, so segment quality never decreases.
  Rng rng(7);
  CollabDocument doc(2);
  auto outcome =
      RunSession(Stage("SEQ-COL-CRO"), {0.6, 0.9, 0.7}, true, {}, &doc, &rng);
  ASSERT_TRUE(outcome.ok());
  std::vector<double> last(doc.num_segments(), 0.0);
  for (const EditOperation& op : doc.log()) {
    EXPECT_GE(op.resulting_quality, last[op.segment] - 1e-12);
    last[op.segment] = op.resulting_quality;
  }
}

}  // namespace
}  // namespace stratrec::platform
