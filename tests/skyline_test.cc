// Tests for the skyline / k-skyband machinery and the ADPaR pruning wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/core/skyline.h"
#include "src/workload/generators.h"

namespace stratrec::core {
namespace {

const std::vector<ParamVector> kTable1 = {
    {0.50, 0.25, 0.28},
    {0.75, 0.33, 0.28},
    {0.80, 0.50, 0.14},
    {0.88, 0.58, 0.14},
};

TEST(Dominance, Semantics) {
  // Higher quality, lower cost, lower latency dominates.
  EXPECT_TRUE(Dominates({0.9, 0.2, 0.2}, {0.8, 0.3, 0.3}));
  // Equal on all axes: no domination.
  EXPECT_FALSE(Dominates({0.8, 0.3, 0.3}, {0.8, 0.3, 0.3}));
  // Strictly better on one axis, equal elsewhere: dominates.
  EXPECT_TRUE(Dominates({0.8, 0.2, 0.3}, {0.8, 0.3, 0.3}));
  // Trade-off: neither dominates.
  EXPECT_FALSE(Dominates({0.9, 0.5, 0.2}, {0.8, 0.3, 0.3}));
  EXPECT_FALSE(Dominates({0.8, 0.3, 0.3}, {0.9, 0.5, 0.2}));
}

TEST(SkylineTest, Table1StrategiesAreAllIncomparable) {
  // Table 1's four strategies trade quality against cost/latency; none
  // dominates another, so the skyline is everything.
  const auto counts = DominanceCounts(kTable1);
  for (int count : counts) EXPECT_EQ(count, 0);
  EXPECT_EQ(Skyline(kTable1).size(), 4u);
}

TEST(SkylineTest, DominatedPointExcluded) {
  std::vector<ParamVector> strategies = kTable1;
  strategies.push_back({0.45, 0.35, 0.30});  // dominated by s1 and s2
  const auto skyline = Skyline(strategies);
  EXPECT_EQ(skyline.size(), 4u);
  EXPECT_TRUE(std::find(skyline.begin(), skyline.end(), 4u) == skyline.end());
  const auto counts = DominanceCounts(strategies);
  EXPECT_EQ(counts[4], 2);
}

TEST(SkylineTest, KSkybandGrowsWithK) {
  std::vector<ParamVector> strategies = kTable1;
  strategies.push_back({0.45, 0.35, 0.30});  // 2 dominators
  auto band1 = KSkyband(strategies, 1);
  auto band2 = KSkyband(strategies, 2);
  auto band3 = KSkyband(strategies, 3);
  ASSERT_TRUE(band1.ok() && band2.ok() && band3.ok());
  EXPECT_EQ(band1->size(), 4u);
  EXPECT_EQ(band2->size(), 4u);  // 2 dominators: still outside the 2-band
  EXPECT_EQ(band3->size(), 5u);  // fewer than 3 dominators: inside
  EXPECT_FALSE(KSkyband(strategies, 0).ok());
}

TEST(SkylineTest, MatchesBruteForceOnRandomInputs) {
  workload::Generator generator({}, 555);
  const auto strategies = generator.StrategyParams(80);
  const auto counts = DominanceCounts(strategies);
  for (size_t i = 0; i < strategies.size(); ++i) {
    int expected = 0;
    for (size_t j = 0; j < strategies.size(); ++j) {
      expected += Dominates(strategies[j], strategies[i]) ? 1 : 0;
    }
    EXPECT_EQ(counts[i], expected) << "point " << i;
  }
}

class SkybandPruningTest
    : public testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(SkybandPruningTest, PrunedAdparIsIdenticalToFull) {
  const int num_strategies = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  workload::Generator generator({}, std::get<2>(GetParam()));
  const auto strategies = generator.StrategyParams(num_strategies);
  const auto requests = generator.Requests(6, k);
  for (const auto& request : requests) {
    auto full = AdparExact(strategies, request.thresholds, k);
    auto pruned = AdparExactSkyband(strategies, request.thresholds, k);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(pruned.ok());
    EXPECT_NEAR(full->squared_distance, pruned->squared_distance, 1e-12)
        << "k=" << k << " d=" << request.thresholds.ToString();
    // Pruned output indices refer to the original list and cover d'.
    for (size_t j : pruned->strategies) {
      ASSERT_LT(j, strategies.size());
      EXPECT_TRUE(Satisfies(strategies[j], pruned->alternative));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SkybandPruningTest,
    testing::Combine(testing::Values(20, 60, 150), testing::Values(1, 3, 7),
                     testing::Values(0x51u, 0x52u, 0x53u)));

TEST(SkybandPruningTest2, PruningShrinksDenseCatalogs) {
  // Clustered catalogs have many dominated strategies; the band should be
  // much smaller than the input.
  workload::GeneratorOptions options;
  options.distribution = workload::DimDistribution::kNormal;
  workload::Generator generator(options, 717);
  const auto strategies = generator.StrategyParams(500);
  auto band = KSkyband(strategies, 3);
  ASSERT_TRUE(band.ok());
  EXPECT_LT(band->size(), strategies.size() / 2);
  EXPECT_GE(band->size(), 3u);
}

}  // namespace
}  // namespace stratrec::core
