// stratrec::Executor tests: queue semantics, ParallelFor partition
// correctness, nested fan-out from inside a pool task (the pattern the
// async Service relies on), drain-on-destruction, and the work-stealing
// scheduler — per-worker deques, FIFO stealing, the injection/deque split
// that keeps ParallelFor latency bounded while unrelated tickets are
// pending, and the QueueDepth/steal-counter observability surface.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/common/executor.h"

namespace stratrec {
namespace {

TEST(Executor, ResolvesThreadCount) {
  Executor fixed(3);
  EXPECT_EQ(fixed.threads(), 3u);
  Executor hardware(0);
  EXPECT_GE(hardware.threads(), 1u);
}

TEST(Executor, SubmitRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    Executor executor(4);
    for (int i = 0; i < 200; ++i) {
      executor.Submit([&ran]() { ran.fetch_add(1); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(ran.load(), 200);
}

TEST(Executor, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Executor executor(1);
    // The first task occupies the single worker long enough for the rest to
    // still be queued when the destructor begins.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    executor.Submit([gate]() { gate.wait(); });
    for (int i = 0; i < 50; ++i) {
      executor.Submit([&ran]() { ran.fetch_add(1); });
    }
    EXPECT_GT(executor.queued(), 0u);
    release.set_value();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  Executor executor(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  executor.ParallelFor(kN, /*grain=*/7, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end - begin, 7u);
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, ParallelForHandlesEdgeCases) {
  Executor executor(2);
  int calls = 0;
  executor.ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // grain 0 is treated as 1; grain >= n collapses to one inline chunk.
  std::atomic<int> covered{0};
  executor.ParallelFor(5, 0, [&](size_t begin, size_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 5);
  executor.ParallelFor(5, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
}

TEST(Executor, ParallelForFromInsidePoolTaskDoesNotDeadlock) {
  // A single-threaded pool is the adversarial case: the task occupying the
  // only worker fans out sub-work, and no other worker exists to help. The
  // caller-participates design must drain every chunk itself.
  Executor executor(1);
  std::promise<size_t> total;
  auto result = total.get_future();
  executor.Submit([&executor, &total]() {
    std::atomic<size_t> sum{0};
    executor.ParallelFor(1'000, 10, [&sum](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    total.set_value(sum.load());
  });
  EXPECT_EQ(result.get(), 1'000u * 999u / 2u);
}

TEST(Executor, ParallelForRunsChunksConcurrently) {
  // Two chunks rendezvous: each waits until the other has started, which
  // can only happen when chunks genuinely run on distinct threads.
  Executor executor(2);
  std::atomic<int> started{0};
  executor.ParallelFor(2, 1, [&started](size_t, size_t) {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 2);
}

// ---------------------------------------------------------------------------
// Work stealing.
// ---------------------------------------------------------------------------

TEST(Executor, WorkerSubmissionsAreStolenByIdleWorkers) {
  // One pool task fans out follow-up tasks via Submit(): they land on that
  // worker's own deque, and the only way the rendezvous below completes is
  // for idle workers to steal them while the spawner is still blocked
  // inside its task.
  Executor executor(4);
  constexpr int kChildren = 3;
  std::atomic<int> running{0};
  std::promise<void> all_running;
  std::shared_future<void> everyone = all_running.get_future().share();
  executor.Submit([&executor, &running, &all_running, everyone]() {
    for (int i = 0; i < kChildren; ++i) {
      executor.Submit([&running, &all_running]() {
        if (running.fetch_add(1) + 1 == kChildren) all_running.set_value();
        while (running.load() < kChildren) std::this_thread::yield();
      });
    }
    // Block the spawning worker until every child runs: the children can
    // only have been stolen.
    everyone.wait();
  });
  everyone.wait();
  EXPECT_GE(executor.StealCount(), static_cast<uint64_t>(kChildren));
}

TEST(Executor, LocalHitsCountOwnDequePops) {
  // A single-threaded pool cannot steal: a task spawning follow-up work
  // pushes to its own deque and later pops it locally.
  Executor executor(1);
  std::atomic<int> ran{0};
  std::promise<void> done;
  executor.Submit([&executor, &ran, &done]() {
    executor.Submit([&ran, &done]() {
      ran.fetch_add(1);
      done.set_value();
    });
  });
  done.get_future().wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(executor.StealCount(), 0u);
  EXPECT_GE(executor.LocalHitCount(), 1u);
}

TEST(Executor, ParallelForIsBoundedWhileInjectionQueueIsSaturated) {
  // The starvation bug the old single-FIFO design had: ParallelFor helper
  // tasks queued *behind* every pending ticket, so fan-out from a running
  // job waited on unrelated work. Here the injection queue is saturated
  // with tasks that block until the very end — under the old design the
  // rendezvous below could never complete (the helper sat behind blocked
  // tickets and the second chunk was never claimed); with helpers on the
  // worker deques an idle worker steals past the pending tickets
  // immediately. The ctest TIMEOUT property is the backstop.
  Executor executor(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> fillers_ran{0};

  // Occupy one worker with the fanning-out job; give it time to be picked
  // up before the fillers are injected so the fillers sit strictly behind.
  std::promise<void> job_started;
  std::promise<size_t> fanout_done;
  executor.Submit([&executor, &job_started, &fanout_done, gate]() {
    job_started.set_value();
    gate.wait();
    // Rendezvous chunks: completing requires a second thread, which must
    // steal the helper task rather than drain the injection queue.
    std::atomic<int> started{0};
    executor.ParallelFor(2, 1, [&started](size_t, size_t) {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
    });
    fanout_done.set_value(static_cast<size_t>(started.load()));
  });
  job_started.get_future().wait();

  // Saturate the injection queue: every filler blocks on the same gate, so
  // none of them can finish before the fan-out proves its latency bound.
  constexpr int kFillers = 64;
  for (int i = 0; i < kFillers; ++i) {
    executor.Submit([&fillers_ran, gate]() {
      gate.wait();
      fillers_ran.fetch_add(1);
    });
  }
  EXPECT_GE(executor.QueueDepth(), static_cast<size_t>(kFillers - 1));

  release.set_value();
  auto done = fanout_done.get_future();
  EXPECT_EQ(done.get(), 2u);  // both chunks ran, concurrently
  // Drain so the counters below are final.
  while (fillers_ran.load() < kFillers) std::this_thread::yield();
  EXPECT_GE(executor.StealCount(), 1u);
}

TEST(Executor, QueueDepthCountsInjectionAndWorkerDeques) {
  Executor executor(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> spawned;
  std::atomic<int> ran{0};

  // The single worker parks inside a task after spawning 3 deque tasks.
  executor.Submit([&executor, &ran, &spawned, gate]() {
    for (int i = 0; i < 3; ++i) {
      executor.Submit([&ran]() { ran.fetch_add(1); });
    }
    spawned.set_value();
    gate.wait();
  });
  spawned.get_future().wait();
  // 2 external submissions stay in the injection queue.
  for (int i = 0; i < 2; ++i) {
    executor.Submit([&ran]() { ran.fetch_add(1); });
  }
  // 3 on the worker's deque + 2 in the injection queue, one consistent sum.
  EXPECT_EQ(executor.QueueDepth(), 5u);
  EXPECT_EQ(executor.queued(), 5u);

  release.set_value();
  while (ran.load() < 5) std::this_thread::yield();
  EXPECT_EQ(executor.QueueDepth(), 0u);
}

TEST(Executor, DeeplyNestedParallelForCoversEveryIndex) {
  // Three levels of fan-out from inside pool tasks, at several pool sizes —
  // the shape a batch ticket takes when the workforce matrix and the ADPaR
  // alternatives both partition across the pool that runs the ticket.
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    Executor executor(threads);
    constexpr size_t kOuter = 4, kMid = 8, kInner = 16;
    std::vector<std::atomic<int>> touched(kOuter * kMid * kInner);
    executor.ParallelFor(kOuter, 1, [&](size_t ob, size_t oe) {
      for (size_t o = ob; o < oe; ++o) {
        executor.ParallelFor(kMid, 1, [&, o](size_t mb, size_t me) {
          for (size_t m = mb; m < me; ++m) {
            executor.ParallelFor(kInner, 3, [&, o, m](size_t ib, size_t ie) {
              for (size_t i = ib; i < ie; ++i) {
                touched[(o * kMid + m) * kInner + i].fetch_add(1);
              }
            });
          }
        });
      }
    });
    for (size_t i = 0; i < touched.size(); ++i) {
      ASSERT_EQ(touched[i].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(Executor, StealStressManyProducersManyFanouts) {
  // External submitters and pool-side fan-out interleave: every task and
  // every chunk must run exactly once regardless of which deque it rode.
  Executor executor(4);
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 32;
  constexpr size_t kFanout = 64;
  std::atomic<size_t> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::atomic<int> tasks_done{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&executor, &sum, &tasks_done]() {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        executor.Submit([&executor, &sum, &tasks_done]() {
          executor.ParallelFor(kFanout, 5, [&sum](size_t begin, size_t end) {
            for (size_t j = begin; j < end; ++j) sum.fetch_add(j + 1);
          });
          tasks_done.fetch_add(1);
        });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  while (tasks_done.load() < kProducers * kTasksPerProducer) {
    std::this_thread::yield();
  }
  const size_t per_task = kFanout * (kFanout + 1) / 2;
  EXPECT_EQ(sum.load(),
            per_task * static_cast<size_t>(kProducers * kTasksPerProducer));
}

}  // namespace
}  // namespace stratrec
