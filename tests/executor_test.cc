// stratrec::Executor tests: queue semantics, ParallelFor partition
// correctness, nested fan-out from inside a pool task (the pattern the
// async Service relies on), and drain-on-destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "src/common/executor.h"

namespace stratrec {
namespace {

TEST(Executor, ResolvesThreadCount) {
  Executor fixed(3);
  EXPECT_EQ(fixed.threads(), 3u);
  Executor hardware(0);
  EXPECT_GE(hardware.threads(), 1u);
}

TEST(Executor, SubmitRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    Executor executor(4);
    for (int i = 0; i < 200; ++i) {
      executor.Submit([&ran]() { ran.fetch_add(1); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(ran.load(), 200);
}

TEST(Executor, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Executor executor(1);
    // The first task occupies the single worker long enough for the rest to
    // still be queued when the destructor begins.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    executor.Submit([gate]() { gate.wait(); });
    for (int i = 0; i < 50; ++i) {
      executor.Submit([&ran]() { ran.fetch_add(1); });
    }
    EXPECT_GT(executor.queued(), 0u);
    release.set_value();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  Executor executor(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  executor.ParallelFor(kN, /*grain=*/7, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end - begin, 7u);
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, ParallelForHandlesEdgeCases) {
  Executor executor(2);
  int calls = 0;
  executor.ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // grain 0 is treated as 1; grain >= n collapses to one inline chunk.
  std::atomic<int> covered{0};
  executor.ParallelFor(5, 0, [&](size_t begin, size_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 5);
  executor.ParallelFor(5, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
}

TEST(Executor, ParallelForFromInsidePoolTaskDoesNotDeadlock) {
  // A single-threaded pool is the adversarial case: the task occupying the
  // only worker fans out sub-work, and no other worker exists to help. The
  // caller-participates design must drain every chunk itself.
  Executor executor(1);
  std::promise<size_t> total;
  auto result = total.get_future();
  executor.Submit([&executor, &total]() {
    std::atomic<size_t> sum{0};
    executor.ParallelFor(1'000, 10, [&sum](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    total.set_value(sum.load());
  });
  EXPECT_EQ(result.get(), 1'000u * 999u / 2u);
}

TEST(Executor, ParallelForRunsChunksConcurrently) {
  // Two chunks rendezvous: each waits until the other has started, which
  // can only happen when chunks genuinely run on distinct threads.
  Executor executor(2);
  std::atomic<int> started{0};
  executor.ParallelFor(2, 1, [&started](size_t, size_t) {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 2);
}

}  // namespace
}  // namespace stratrec
