// Service-facade property sweep, mirroring tests/facade_property_test.cc:
// SubmitBatch across the full ServiceConfig cross-product (objective x
// aggregation x workforce policy x algorithm name) on random workloads.
// Asserts (a) the global invariants that must hold regardless of
// configuration and (b) exact agreement with the core StratRec pipeline the
// facade wraps — the redesign must not change a single recommendation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/workload/generators.h"

namespace stratrec::api {
namespace {

class ServicePropertyTest
    : public testing::TestWithParam<
          std::tuple<core::Objective, core::AggregationMode,
                     core::WorkforcePolicy, std::string, uint64_t>> {
 protected:
  void SetUp() override {
    workload::Generator generator({}, std::get<4>(GetParam()));
    catalog_ = CatalogFromProfiles(generator.Profiles(40));
    requests_ = generator.RequestsWithRanges(12, 3, {0.5, 0.8}, {0.6, 1.0},
                                             {0.6, 1.0});
    config_.batch.objective = std::get<0>(GetParam());
    config_.batch.aggregation = std::get<1>(GetParam());
    config_.batch.policy = std::get<2>(GetParam());
    config_.batch.algorithm = std::get<3>(GetParam());
  }

  core::BatchAlgorithm CoreAlgorithm() const {
    const std::string& name = config_.batch.algorithm;
    if (name == "baseline-g") return core::BatchAlgorithm::kBaselineG;
    if (name == "brute-force") return core::BatchAlgorithm::kBruteForce;
    return core::BatchAlgorithm::kBatchStrat;
  }

  core::Catalog catalog_;
  std::vector<core::DeploymentRequest> requests_;
  ServiceConfig config_;
};

TEST_P(ServicePropertyTest, GlobalInvariantsHold) {
  auto service = Service::Create(catalog_, config_);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  for (double w : {0.3, 0.7, 1.0}) {
    BatchRequest envelope;
    envelope.requests = requests_;
    envelope.availability = AvailabilitySpec::Fixed(w);
    auto report = service->SubmitBatch(envelope);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_DOUBLE_EQ(report->availability, w);
    EXPECT_EQ(report->algorithm, config_.batch.algorithm);

    const core::BatchResult& batch = report->result.aggregator.batch;
    // 1. Partition: every request is satisfied xor unsatisfied.
    EXPECT_EQ(batch.satisfied.size() + batch.unsatisfied.size(),
              requests_.size());
    // 2. Capacity discipline.
    EXPECT_LE(batch.workforce_used, w + 1e-9);
    // 3. Satisfied requests carry exactly k feasible strategies that meet
    //    the thresholds at their allocated workforce.
    for (size_t i : batch.satisfied) {
      const core::RequestOutcome& outcome = batch.outcomes[i];
      EXPECT_EQ(outcome.strategies.size(),
                static_cast<size_t>(requests_[i].k));
      for (size_t j : outcome.strategies) {
        const core::WorkforceCell cell = core::ComputeWorkforceCell(
            catalog_.profiles[j], requests_[i].thresholds,
            config_.batch.policy);
        EXPECT_TRUE(cell.feasible);
        EXPECT_LE(cell.requirement, w + 1e-9);
        const core::ParamVector at_allocation =
            catalog_.profiles[j].EstimateParams(cell.requirement);
        EXPECT_TRUE(core::Satisfies(at_allocation, requests_[i].thresholds))
            << "request " << i << " strategy " << j << " W=" << w;
      }
    }
    // 4. Every unsatisfied request received an alternative or an explicit
    //    ADPaR failure.
    EXPECT_EQ(batch.unsatisfied.size(),
              report->result.alternatives.size() +
                  report->result.adpar_failures.size());
    // 5. Alternatives are valid relaxations covering k strategies.
    for (const auto& alt : report->result.alternatives) {
      const core::ParamVector& d = requests_[alt.request_index].thresholds;
      const core::ParamVector& d_prime = alt.result.alternative;
      EXPECT_LE(d_prime.quality, d.quality + 1e-9);
      EXPECT_GE(d_prime.cost, d.cost - 1e-9);
      EXPECT_GE(d_prime.latency, d.latency - 1e-9);
      EXPECT_EQ(alt.result.strategies.size(),
                static_cast<size_t>(requests_[alt.request_index].k));
      for (size_t j : alt.result.strategies) {
        EXPECT_TRUE(core::Satisfies(
            report->result.aggregator.strategy_params[j], d_prime));
      }
    }
    // 6. Objective bookkeeping: total equals the sum over satisfied.
    double recomputed = 0.0;
    for (size_t i : batch.satisfied) {
      recomputed += batch.outcomes[i].objective_value;
    }
    EXPECT_NEAR(recomputed, batch.total_objective, 1e-9);
  }
}

TEST_P(ServicePropertyTest, AgreesWithWrappedCorePipeline) {
  auto service = Service::Create(catalog_, config_);
  ASSERT_TRUE(service.ok());
  auto stratrec = core::StratRec::Create(catalog_);
  ASSERT_TRUE(stratrec.ok());

  core::StratRecOptions core_options;
  core_options.batch.objective = config_.batch.objective;
  core_options.batch.aggregation = config_.batch.aggregation;
  core_options.batch.policy = config_.batch.policy;
  core_options.algorithm = CoreAlgorithm();

  BatchRequest envelope;
  envelope.requests = requests_;
  envelope.availability = AvailabilitySpec::Fixed(0.6);

  auto facade = service->SubmitBatch(envelope);
  auto direct = stratrec->ProcessBatchAtAvailability(requests_, 0.6,
                                                     core_options);
  ASSERT_TRUE(facade.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(facade->result.aggregator.batch.satisfied,
            direct->aggregator.batch.satisfied);
  EXPECT_DOUBLE_EQ(facade->result.aggregator.batch.total_objective,
                   direct->aggregator.batch.total_objective);
  ASSERT_EQ(facade->result.alternatives.size(),
            direct->alternatives.size());
  for (size_t i = 0; i < facade->result.alternatives.size(); ++i) {
    EXPECT_EQ(facade->result.alternatives[i].result.strategies,
              direct->alternatives[i].result.strategies);
    EXPECT_DOUBLE_EQ(facade->result.alternatives[i].result.distance,
                     direct->alternatives[i].result.distance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrossProduct, ServicePropertyTest,
    testing::Combine(
        testing::Values(core::Objective::kThroughput,
                        core::Objective::kPayoff),
        testing::Values(core::AggregationMode::kSum,
                        core::AggregationMode::kMax),
        testing::Values(core::WorkforcePolicy::kMinimalWorkforce,
                        core::WorkforcePolicy::kPaperMaxOfThree),
        testing::Values(std::string("batchstrat"), std::string("baseline-g"),
                        std::string("brute-force")),
        testing::Values(0xFACEu, 0xFACE2u)));

}  // namespace
}  // namespace stratrec::api
